//! DIPN (Guo et al., KDD 2019): deep intent prediction network —
//! attention over a GRU run across the user's time-ordered multi-behavior
//! interaction sequence.
//!
//! Reduction (see DESIGN.md): the original predicts real-time purchasing
//! intent from rich page features; here the sequence elements are
//! `item embedding + behavior-type embedding` over the user's last `T`
//! training events, the GRU's states are attention-pooled into a user
//! intent vector, and the score is its dot product with a separate output
//! item embedding.

use std::sync::Arc;

use gnmr_autograd::{Adam, Ctx, GruCell, ParamStore, Var};
use gnmr_eval::Recommender;
use gnmr_graph::{BatchSampler, InteractionLog, MultiBehaviorGraph};
use gnmr_tensor::{init, rng, Matrix};

use crate::common::BaselineConfig;

/// Sequence length used by the GRU.
const SEQ_LEN: usize = 12;

/// A trained DIPN model.
pub struct Dipn {
    user_intent: Matrix,
    item_out: Matrix,
    item_bias: Matrix,
    /// Per-epoch training losses.
    pub losses: Vec<f32>,
}

/// Per-user fixed-length `(item, behavior)` sequences, most recent last;
/// users with fewer than `SEQ_LEN` events repeat their earliest event
/// (left padding with real signal).
fn build_sequences(log: &InteractionLog, n_users: usize) -> Vec<Vec<(u32, u8)>> {
    (0..n_users as u32)
        .map(|u| {
            let timeline = log.user_timeline(u);
            let mut seq: Vec<(u32, u8)> = timeline.iter().map(|e| (e.item, e.behavior)).collect();
            if seq.is_empty() {
                seq.push((0, 0));
            }
            if seq.len() > SEQ_LEN {
                seq = seq[seq.len() - SEQ_LEN..].to_vec();
            }
            while seq.len() < SEQ_LEN {
                seq.insert(0, seq[0]);
            }
            seq
        })
        .collect()
}

struct DipnNet {
    gru: GruCell,
    dim: usize,
}

impl DipnNet {
    /// Runs the GRU + attention pooling for a batch of users, returning
    /// the `(batch, dim)` intent representations.
    fn intent(&self, ctx: &mut Ctx<'_>, sequences: &[Vec<(u32, u8)>], users: &[u32]) -> Var {
        let item_emb = ctx.param("item_in");
        let beh_emb = ctx.param("beh_in");
        let att_w = ctx.param("att.w");
        let att_v = ctx.param("att.v");

        let mut h = ctx.constant(Matrix::zeros(users.len(), self.dim));
        let mut states = Vec::with_capacity(SEQ_LEN);
        // `t` walks time steps of every user's sequence in lockstep, so a
        // plain index loop is clearer than zipping SEQ_LEN iterators.
        #[allow(clippy::needless_range_loop)]
        for t in 0..SEQ_LEN {
            let items: Vec<u32> = users.iter().map(|&u| sequences[u as usize][t].0).collect();
            let behaviors: Vec<u32> =
                users.iter().map(|&u| sequences[u as usize][t].1 as u32).collect();
            let ie = ctx.g.gather_rows(item_emb, Arc::new(items));
            let be = ctx.g.gather_rows(beh_emb, Arc::new(behaviors));
            let x = ctx.g.add(ie, be);
            h = self.gru.step(ctx, x, h);
            states.push(h);
        }
        // Attention pooling over time steps.
        let mut scores = Vec::with_capacity(SEQ_LEN);
        for &s in &states {
            let proj = ctx.g.matmul(s, att_w);
            let act = ctx.g.tanh(proj);
            scores.push(ctx.g.matmul(act, att_v)); // (batch, 1)
        }
        let score_mat = ctx.g.concat_cols(&scores); // (batch, T)
        let weights = ctx.g.softmax_rows(score_mat);
        let mut pooled: Option<Var> = None;
        for (t, &s) in states.iter().enumerate() {
            let w = ctx.g.slice_cols(weights, t, t + 1);
            let term = ctx.g.mul_col_broadcast(s, w);
            pooled = Some(match pooled {
                Some(p) => ctx.g.add(p, term),
                None => term,
            });
        }
        pooled.expect("SEQ_LEN >= 1")
    }
}

impl Dipn {
    /// Trains DIPN on the training log's behavior sequences.
    pub fn fit(graph: &MultiBehaviorGraph, log: &InteractionLog, cfg: &BaselineConfig) -> Self {
        assert_eq!(graph.n_users(), log.n_users() as usize, "graph/log user mismatch");
        let sequences = build_sequences(log, graph.n_users());

        let mut store = ParamStore::new();
        let mut init_rng = rng::substream(cfg.seed, 0xD19A);
        store.insert("item_in", init::normal(graph.n_items(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("beh_in", init::normal(graph.n_behaviors(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("item_out", init::normal(graph.n_items(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("item_bias", Matrix::zeros(graph.n_items(), 1));
        store.insert("att.w", init::xavier_uniform(cfg.dim, cfg.dim, &mut init_rng));
        store.insert("att.v", init::xavier_uniform(cfg.dim, 1, &mut init_rng));
        let gru = GruCell::new(&mut store, &mut init_rng, "gru", cfg.dim, cfg.dim);
        let net = DipnNet { gru, dim: cfg.dim };

        let sampler = BatchSampler::new(graph);
        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut sample_rng = rng::substream(cfg.seed, 0xD19B);
        let steps = sampler
            .eligible_users()
            .len()
            .div_ceil(cfg.batch_users.max(1))
            .max(1);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut counted = 0;
            for _ in 0..steps {
                let batch = sampler.sample(cfg.batch_users, cfg.samples_per_user, &mut sample_rng);
                if batch.is_empty() {
                    continue;
                }
                let mut ctx = Ctx::new(&store);
                let intent = net.intent(&mut ctx, &sequences, &batch.users);
                let item_out = ctx.param("item_out");
                let bias = ctx.param("item_bias");
                let score = |ctx: &mut Ctx<'_>, items: Vec<u32>| {
                    let items = Arc::new(items);
                    let ie = ctx.g.gather_rows(item_out, items.clone());
                    let be = ctx.g.gather_rows(bias, items);
                    let dot = ctx.g.row_dot(intent, ie);
                    ctx.g.add(dot, be)
                };
                let p = score(&mut ctx, batch.pos_items);
                let n = score(&mut ctx, batch.neg_items);
                let diff = ctx.g.sub(n, p);
                let margin = ctx.g.add_scalar(diff, 1.0);
                let hinge = ctx.g.relu(margin);
                let loss = ctx.g.mean(hinge);
                epoch_loss += ctx.g.value(loss).scalar_value();
                counted += 1;
                let mut grads = ctx.grads(loss);
                grads.clip_global_norm(5.0);
                opt.step(&mut store, &grads);
            }
            opt.decay_lr();
            losses.push(if counted > 0 { epoch_loss / counted as f32 } else { f32::NAN });
        }

        // Materialize intent vectors for all users.
        let all: Vec<u32> = (0..graph.n_users() as u32).collect();
        let mut user_intent = Matrix::zeros(graph.n_users(), cfg.dim);
        for chunk in all.chunks(256) {
            let mut ctx = Ctx::new(&store);
            let intent = net.intent(&mut ctx, &sequences, chunk);
            let v = ctx.g.value(intent);
            for (row, &u) in chunk.iter().enumerate() {
                user_intent.row_mut(u as usize).copy_from_slice(v.row(row));
            }
        }
        Self {
            user_intent,
            item_out: store.get("item_out").clone(),
            item_bias: store.get("item_bias").clone(),
            losses,
        }
    }
}

impl Recommender for Dipn {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let u = self.user_intent.row(user as usize);
        items
            .iter()
            .map(|&i| {
                let dot: f32 = u.iter().zip(self.item_out.row(i as usize)).map(|(a, b)| a * b).sum();
                dot + self.item_bias.get(i as usize, 0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn sequences_are_fixed_length_and_time_ordered() {
        let d = presets::tiny_taobao(3);
        let seqs = build_sequences(&d.train_log, d.graph.n_users());
        assert_eq!(seqs.len(), d.graph.n_users());
        for s in &seqs {
            assert_eq!(s.len(), SEQ_LEN);
        }
    }

    #[test]
    fn trains_and_beats_random() {
        let d = presets::tiny_movielens(3);
        let m = Dipn::fit(&d.graph, &d.train_log, &BaselineConfig { epochs: 12, ..BaselineConfig::fast_test() });
        assert!(m.losses.last().unwrap().is_finite());
        let r = evaluate(&m, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10), "DIPN {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn intent_vectors_differ_across_users() {
        let d = presets::tiny_movielens(3);
        let m = Dipn::fit(&d.graph, &d.train_log, &BaselineConfig { epochs: 2, ..BaselineConfig::fast_test() });
        assert!(m.user_intent.row(0) != m.user_intent.row(1));
        assert!(m.user_intent.is_finite());
    }
}
