//! DMF (Xue et al., IJCAI 2017): deep matrix factorization — two MLP
//! towers over the raw user/item interaction profiles of the target
//! behavior, matched by inner product in the projected space.

use std::sync::Arc;

use gnmr_autograd::{Activation, Mlp, ParamStore};
use gnmr_eval::Recommender;
use gnmr_graph::MultiBehaviorGraph;
use gnmr_tensor::{rng, Matrix};

use crate::common::{dense_rows, train_pairwise, BaselineConfig};

/// A trained DMF model: the projected user and item representations.
pub struct Dmf {
    user_repr: Matrix,
    item_repr: Matrix,
    /// Per-epoch training losses.
    pub losses: Vec<f32>,
}

impl Dmf {
    /// Trains DMF on the target behavior of `graph`.
    pub fn fit(graph: &MultiBehaviorGraph, cfg: &BaselineConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init_rng = rng::substream(cfg.seed, 0xD3F);
        let hidden = (cfg.dim * 4).max(32);
        let user_tower = Mlp::new(
            &mut store,
            &mut init_rng,
            "ut",
            &[graph.n_items(), hidden, cfg.dim],
            Activation::Relu,
            Activation::None,
        );
        let item_tower = Mlp::new(
            &mut store,
            &mut init_rng,
            "it",
            &[graph.n_users(), hidden, cfg.dim],
            Activation::Relu,
            Activation::None,
        );

        let ui = Arc::clone(graph.target_user_item());
        let iu = Arc::new(graph.target_user_item().transpose());

        let losses = train_pairwise(graph, &mut store, cfg, |ctx, users, pos, neg| {
            let u_profiles = ctx.constant(dense_rows(&ui, &users));
            let p_profiles = ctx.constant(dense_rows(&iu, &pos));
            let n_profiles = ctx.constant(dense_rows(&iu, &neg));
            let u_repr = user_tower.apply(ctx, u_profiles);
            let p_repr = item_tower.apply(ctx, p_profiles);
            let n_repr = item_tower.apply(ctx, n_profiles);
            let p = ctx.g.row_dot(u_repr, p_repr);
            let n = ctx.g.row_dot(u_repr, n_repr);
            (p, n)
        });

        // Project every user and item once for fast scoring.
        let all_users: Vec<u32> = (0..graph.n_users() as u32).collect();
        let all_items: Vec<u32> = (0..graph.n_items() as u32).collect();
        let user_repr = {
            let mut ctx = gnmr_autograd::Ctx::new(&store);
            let x = ctx.constant(dense_rows(&ui, &all_users));
            let r = user_tower.apply(&mut ctx, x);
            ctx.g.value(r).clone()
        };
        let item_repr = {
            let mut ctx = gnmr_autograd::Ctx::new(&store);
            let x = ctx.constant(dense_rows(&iu, &all_items));
            let r = item_tower.apply(&mut ctx, x);
            ctx.g.value(r).clone()
        };
        Self { user_repr, item_repr, losses }
    }
}

impl Recommender for Dmf {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let urow = self.user_repr.row(user as usize);
        items
            .iter()
            .map(|&i| urow.iter().zip(self.item_repr.row(i as usize)).map(|(a, b)| a * b).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn trains_and_beats_random() {
        let d = presets::tiny_movielens(3);
        let m = Dmf::fit(&d.graph, &BaselineConfig { epochs: 15, ..BaselineConfig::fast_test() });
        assert!(m.losses.last().unwrap() < &m.losses[0], "no learning: {:?}", m.losses);
        let r = evaluate(&m, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10), "DMF {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn representations_have_model_dim() {
        let d = presets::tiny_movielens(3);
        let m = Dmf::fit(&d.graph, &BaselineConfig { epochs: 2, dim: 8, ..BaselineConfig::fast_test() });
        assert_eq!(m.user_repr.shape(), (d.graph.n_users(), 8));
        assert_eq!(m.item_repr.shape(), (d.graph.n_items(), 8));
        assert!(m.user_repr.is_finite());
    }
}
