//! ItemKNN: cosine item-item co-occurrence scoring on the target
//! behavior.
//!
//! Not part of the paper's Table II — included as a non-learned
//! collaborative reference point (it is a strong floor on small data and
//! useful for diagnosing generators and learned models).

use gnmr_eval::Recommender;
use gnmr_graph::MultiBehaviorGraph;

/// A fitted ItemKNN scorer.
pub struct ItemKnn {
    n_items: usize,
    /// Row-major `n_items x n_items` cosine co-occurrence.
    sim: Vec<f32>,
    /// Per-user target-behavior item lists.
    user_items: Vec<Vec<u32>>,
}

impl ItemKnn {
    /// Builds the cosine co-occurrence matrix from the target behavior.
    ///
    /// Memory is `O(n_items^2)`; intended for harness-scale catalogues.
    pub fn fit(graph: &MultiBehaviorGraph) -> Self {
        let j = graph.n_items();
        let target = graph.target_user_item();
        let mut counts = vec![0f32; j];
        let mut sim = vec![0f32; j * j];
        for u in 0..graph.n_users() {
            let (items, _) = target.row(u);
            for &a in items {
                counts[a as usize] += 1.0;
            }
            for &a in items {
                let row = &mut sim[a as usize * j..(a as usize + 1) * j];
                for &b in items {
                    if a != b {
                        row[b as usize] += 1.0;
                    }
                }
            }
        }
        for a in 0..j {
            for b in 0..j {
                let denom = (counts[a] * counts[b]).sqrt();
                if denom > 0.0 {
                    sim[a * j + b] /= denom;
                }
            }
        }
        let user_items = (0..graph.n_users()).map(|u| target.row(u).0.to_vec()).collect();
        Self { n_items: j, sim, user_items }
    }

    /// Similarity between two items.
    pub fn similarity(&self, a: u32, b: u32) -> f32 {
        self.sim[a as usize * self.n_items + b as usize]
    }
}

impl Recommender for ItemKnn {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let history = &self.user_items[user as usize];
        items
            .iter()
            .map(|&i| history.iter().map(|&h| self.similarity(i, h)).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn beats_random_without_training() {
        let d = presets::tiny_movielens(3);
        let knn = ItemKnn::fit(&d.graph);
        let r = evaluate(&knn, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10) + 0.1, "ItemKNN {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn similarity_is_symmetric_and_zero_diagonal() {
        let d = presets::tiny_movielens(3);
        let knn = ItemKnn::fit(&d.graph);
        for a in 0..20u32 {
            assert_eq!(knn.similarity(a, a), 0.0);
            for b in 0..20u32 {
                assert!((knn.similarity(a, b) - knn.similarity(b, a)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn cooccurring_items_are_similar() {
        let d = presets::tiny_movielens(3);
        let knn = ItemKnn::fit(&d.graph);
        // Take a user with >= 2 liked items: those items co-occur.
        let target = d.graph.target();
        let user = (0..d.graph.n_users() as u32)
            .find(|&u| d.graph.user_degree(u, target) >= 2)
            .expect("some user has 2+ likes");
        let items = d.graph.user_items(user, target);
        assert!(knn.similarity(items[0], items[1]) > 0.0);
    }
}
