//! NCF (He et al., WWW 2017): neural collaborative filtering in its three
//! variants from the paper's Table II:
//!
//! * **NCF-G** (GMF): weighted element-wise product of embeddings;
//! * **NCF-M** (MLP): a multi-layer perceptron over concatenated
//!   embeddings;
//! * **NCF-N** (NeuMF): fusion of GMF and MLP with separate embedding
//!   tables.

use std::sync::Arc;

use gnmr_autograd::{Activation, Ctx, Mlp, ParamStore, Var};
use gnmr_eval::Recommender;
use gnmr_graph::MultiBehaviorGraph;
use gnmr_tensor::{init, rng};

use crate::common::{train_pairwise, BaselineConfig};

/// Which NCF interaction function to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NcfVariant {
    /// Generalized matrix factorization (element-wise product).
    Gmf,
    /// Multi-layer perceptron over concatenated embeddings.
    Mlp,
    /// NeuMF: GMF and MLP fused.
    NeuMf,
}

impl NcfVariant {
    /// The paper's label for this variant.
    pub fn label(&self) -> &'static str {
        match self {
            NcfVariant::Gmf => "NCF-G",
            NcfVariant::Mlp => "NCF-M",
            NcfVariant::NeuMf => "NCF-N",
        }
    }
}

struct NcfNet {
    variant: NcfVariant,
    mlp: Option<Mlp>,
}

impl NcfNet {
    fn build(store: &mut ParamStore, graph: &MultiBehaviorGraph, cfg: &BaselineConfig, variant: NcfVariant) -> Self {
        let mut init_rng = rng::substream(cfg.seed, 0x4E43);
        let d = cfg.dim;
        if matches!(variant, NcfVariant::Gmf | NcfVariant::NeuMf) {
            store.insert("gmf.u", init::normal(graph.n_users(), d, 0.0, 0.1, &mut init_rng));
            store.insert("gmf.v", init::normal(graph.n_items(), d, 0.0, 0.1, &mut init_rng));
            store.insert("gmf.w", init::xavier_uniform(d, 1, &mut init_rng));
        }
        let mlp = if matches!(variant, NcfVariant::Mlp | NcfVariant::NeuMf) {
            store.insert("mlp.u", init::normal(graph.n_users(), d, 0.0, 0.1, &mut init_rng));
            store.insert("mlp.v", init::normal(graph.n_items(), d, 0.0, 0.1, &mut init_rng));
            Some(Mlp::new(
                store,
                &mut init_rng,
                "mlp.tower",
                &[2 * d, 2 * d, d, 1],
                Activation::Relu,
                Activation::None,
            ))
        } else {
            None
        };
        Self { variant, mlp }
    }

    /// Scores a batch of `(user, item)` pairs on the tape.
    fn score_batch(&self, ctx: &mut Ctx<'_>, users: Arc<Vec<u32>>, items: Arc<Vec<u32>>) -> Var {
        let gmf_part = matches!(self.variant, NcfVariant::Gmf | NcfVariant::NeuMf).then(|| {
            let u = ctx.param("gmf.u");
            let v = ctx.param("gmf.v");
            let w = ctx.param("gmf.w");
            let ue = ctx.g.gather_rows(u, users.clone());
            let ie = ctx.g.gather_rows(v, items.clone());
            let prod = ctx.g.mul(ue, ie);
            ctx.g.matmul(prod, w)
        });
        let mlp_part = self.mlp.as_ref().map(|mlp| {
            let u = ctx.param("mlp.u");
            let v = ctx.param("mlp.v");
            let ue = ctx.g.gather_rows(u, users.clone());
            let ie = ctx.g.gather_rows(v, items.clone());
            let cat = ctx.g.concat_cols(&[ue, ie]);
            mlp.apply(ctx, cat)
        });
        match (gmf_part, mlp_part) {
            (Some(g), Some(m)) => ctx.g.add(g, m),
            (Some(g), None) => g,
            (None, Some(m)) => m,
            (None, None) => unreachable!("NCF net must have at least one branch"),
        }
    }
}

/// A trained NCF model.
pub struct Ncf {
    store: ParamStore,
    net: NcfNet,
    /// Per-epoch training losses.
    pub losses: Vec<f32>,
}

impl Ncf {
    /// Trains the requested NCF variant on the target behavior.
    pub fn fit(graph: &MultiBehaviorGraph, cfg: &BaselineConfig, variant: NcfVariant) -> Self {
        let mut store = ParamStore::new();
        let net = NcfNet::build(&mut store, graph, cfg, variant);
        let losses = train_pairwise(graph, &mut store, cfg, |ctx, users, pos, neg| {
            let p = net.score_batch(ctx, users.clone(), pos);
            let n = net.score_batch(ctx, users, neg);
            (p, n)
        });
        Self { store, net, losses }
    }

    /// The trained variant.
    pub fn variant(&self) -> NcfVariant {
        self.net.variant
    }
}

impl Recommender for Ncf {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let users = Arc::new(vec![user; items.len()]);
        let items = Arc::new(items.to_vec());
        let mut ctx = Ctx::new(&self.store);
        let s = self.net.score_batch(&mut ctx, users, items);
        ctx.g.value(s).clone().into_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn all_variants_train_and_beat_random() {
        let d = presets::tiny_movielens(3);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]).hr_at(10);
        for variant in [NcfVariant::Gmf, NcfVariant::Mlp, NcfVariant::NeuMf] {
            let m = Ncf::fit(&d.graph, &BaselineConfig { epochs: 20, ..BaselineConfig::fast_test() }, variant);
            assert!(m.losses.last().unwrap().is_finite());
            let hr = evaluate(&m, &d.test, &[10]).hr_at(10);
            assert!(hr > rnd, "{} {hr:.3} vs random {rnd:.3}", variant.label());
            assert_eq!(m.variant(), variant);
        }
    }

    #[test]
    fn variant_labels_match_paper() {
        assert_eq!(NcfVariant::Gmf.label(), "NCF-G");
        assert_eq!(NcfVariant::Mlp.label(), "NCF-M");
        assert_eq!(NcfVariant::NeuMf.label(), "NCF-N");
    }

    #[test]
    fn neumf_has_both_branches() {
        let d = presets::tiny_movielens(3);
        let m = Ncf::fit(&d.graph, &BaselineConfig { epochs: 1, ..BaselineConfig::fast_test() }, NcfVariant::NeuMf);
        assert!(m.store.contains("gmf.u"));
        assert!(m.store.contains("mlp.u"));
        let g = Ncf::fit(&d.graph, &BaselineConfig { epochs: 1, ..BaselineConfig::fast_test() }, NcfVariant::Gmf);
        assert!(!g.store.contains("mlp.u"));
    }
}
