//! CF-UIcA (Du et al., AAAI 2018): user-item co-autoregressive
//! collaborative filtering.
//!
//! Implicit-feedback reduction (see DESIGN.md): the score of `(u, i)`
//! combines a user-side conditional (hidden state from the user's item
//! set, matched against the item) and an item-side conditional (hidden
//! state from the item's user set, matched against the user):
//! `s(u,i) = <h_u, V_i> + <g_i, U_u> + b_i`.

use std::sync::Arc;

use gnmr_autograd::{Ctx, ParamStore, Var};
use gnmr_eval::Recommender;
use gnmr_graph::MultiBehaviorGraph;
use gnmr_tensor::{init, rng, Matrix};

use crate::common::{train_pairwise, BaselineConfig};

/// A trained CF-UIcA model.
pub struct CfUica {
    user_hidden: Matrix,
    item_hidden: Matrix,
    item_match: Matrix,
    user_match: Matrix,
    item_bias: Matrix,
    /// Per-epoch training losses.
    pub losses: Vec<f32>,
}

impl CfUica {
    /// Trains CF-UIcA on the target behavior.
    pub fn fit(graph: &MultiBehaviorGraph, cfg: &BaselineConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init_rng = rng::substream(cfg.seed, 0xC0CA);
        store.insert("w_item", init::normal(graph.n_items(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("v_item", init::normal(graph.n_items(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("w_user", init::normal(graph.n_users(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("u_user", init::normal(graph.n_users(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("b_item", Matrix::zeros(graph.n_items(), 1));
        store.insert("c_u", Matrix::zeros(1, cfg.dim));
        store.insert("c_i", Matrix::zeros(1, cfg.dim));

        let ui = Arc::new(graph.target_user_item().row_normalized());
        let iu = Arc::new(graph.item_user(graph.target()).row_normalized());

        let hiddens = |ctx: &mut Ctx<'_>| -> (Var, Var) {
            let w_item = ctx.param("w_item");
            let w_user = ctx.param("w_user");
            let c_u = ctx.param("c_u");
            let c_i = ctx.param("c_i");
            let hu_pre = ctx.g.spmm(Arc::clone(&ui), w_item);
            let hu_shift = ctx.g.add_row_broadcast(hu_pre, c_u);
            let h_user = ctx.g.tanh(hu_shift);
            let gi_pre = ctx.g.spmm(Arc::clone(&iu), w_user);
            let gi_shift = ctx.g.add_row_broadcast(gi_pre, c_i);
            let g_item = ctx.g.tanh(gi_shift);
            (h_user, g_item)
        };

        let losses = train_pairwise(graph, &mut store, cfg, |ctx, users, pos, neg| {
            let (h_user, g_item) = hiddens(ctx);
            let v_item = ctx.param("v_item");
            let u_user = ctx.param("u_user");
            let b = ctx.param("b_item");
            let hu = ctx.g.gather_rows(h_user, users.clone());
            let uu = ctx.g.gather_rows(u_user, users);
            let score = |ctx: &mut Ctx<'_>, items: Arc<Vec<u32>>| {
                let vi = ctx.g.gather_rows(v_item, items.clone());
                let gi = ctx.g.gather_rows(g_item, items.clone());
                let bi = ctx.g.gather_rows(b, items);
                let user_side = ctx.g.row_dot(hu, vi);
                let item_side = ctx.g.row_dot(gi, uu);
                let both = ctx.g.add(user_side, item_side);
                ctx.g.add(both, bi)
            };
            let p = score(ctx, pos);
            let n = score(ctx, neg);
            (p, n)
        });

        let (user_hidden, item_hidden) = {
            let mut ctx = Ctx::new(&store);
            let (h, g) = hiddens(&mut ctx);
            (ctx.g.value(h).clone(), ctx.g.value(g).clone())
        };
        Self {
            user_hidden,
            item_hidden,
            item_match: store.get("v_item").clone(),
            user_match: store.get("u_user").clone(),
            item_bias: store.get("b_item").clone(),
            losses,
        }
    }
}

impl Recommender for CfUica {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let h = self.user_hidden.row(user as usize);
        let uu = self.user_match.row(user as usize);
        items
            .iter()
            .map(|&i| {
                let user_side: f32 =
                    h.iter().zip(self.item_match.row(i as usize)).map(|(a, b)| a * b).sum();
                let item_side: f32 =
                    self.item_hidden.row(i as usize).iter().zip(uu).map(|(a, b)| a * b).sum();
                user_side + item_side + self.item_bias.get(i as usize, 0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn trains_and_beats_random() {
        let d = presets::tiny_movielens(3);
        let m = CfUica::fit(&d.graph, &BaselineConfig { epochs: 20, ..BaselineConfig::fast_test() });
        assert!(m.losses.last().unwrap() < &m.losses[0]);
        let r = evaluate(&m, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10), "CF-UIcA {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn both_sides_contribute() {
        let d = presets::tiny_movielens(3);
        let m = CfUica::fit(&d.graph, &BaselineConfig { epochs: 5, ..BaselineConfig::fast_test() });
        // Neither hidden side should be identically zero.
        assert!(m.user_hidden.max_abs() > 1e-4);
        assert!(m.item_hidden.max_abs() > 1e-4);
    }
}
