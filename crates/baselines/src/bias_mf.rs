//! BiasMF (Koren et al., 2009): matrix factorization with user and item
//! bias terms, trained with the unified pairwise ranking objective on the
//! target behavior.

use gnmr_autograd::ParamStore;
use gnmr_eval::Recommender;
use gnmr_graph::MultiBehaviorGraph;
use gnmr_tensor::{init, rng, Matrix};

use crate::common::{train_pairwise, BaselineConfig};

/// A trained BiasMF model.
pub struct BiasMf {
    user_emb: Matrix,
    item_emb: Matrix,
    user_bias: Matrix,
    item_bias: Matrix,
    /// Per-epoch training losses (for diagnostics).
    pub losses: Vec<f32>,
}

impl BiasMf {
    /// Trains BiasMF on the target behavior of `graph`.
    pub fn fit(graph: &MultiBehaviorGraph, cfg: &BaselineConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init_rng = rng::substream(cfg.seed, 0xB1A5);
        store.insert("u", init::normal(graph.n_users(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("v", init::normal(graph.n_items(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("bu", Matrix::zeros(graph.n_users(), 1));
        store.insert("bi", Matrix::zeros(graph.n_items(), 1));

        let losses = train_pairwise(graph, &mut store, cfg, |ctx, users, pos, neg| {
            let u = ctx.param("u");
            let v = ctx.param("v");
            let bu = ctx.param("bu");
            let bi = ctx.param("bi");
            let ue = ctx.g.gather_rows(u, users.clone());
            let bue = ctx.g.gather_rows(bu, users);

            let score = |ctx: &mut gnmr_autograd::Ctx<'_>, items: std::sync::Arc<Vec<u32>>| {
                let ie = ctx.g.gather_rows(v, items.clone());
                let bie = ctx.g.gather_rows(bi, items);
                let dot = ctx.g.row_dot(ue, ie);
                let with_user = ctx.g.add(dot, bue);
                ctx.g.add(with_user, bie)
            };
            let p = score(ctx, pos);
            let n = score(ctx, neg);
            (p, n)
        });

        Self {
            user_emb: store.get("u").clone(),
            item_emb: store.get("v").clone(),
            user_bias: store.get("bu").clone(),
            item_bias: store.get("bi").clone(),
            losses,
        }
    }
}

impl Recommender for BiasMf {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let urow = self.user_emb.row(user as usize);
        let ub = self.user_bias.get(user as usize, 0);
        items
            .iter()
            .map(|&i| {
                let dot: f32 = urow.iter().zip(self.item_emb.row(i as usize)).map(|(a, b)| a * b).sum();
                dot + ub + self.item_bias.get(i as usize, 0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn trains_and_beats_random() {
        let d = presets::tiny_movielens(3);
        let m = BiasMf::fit(&d.graph, &BaselineConfig { epochs: 25, ..BaselineConfig::fast_test() });
        assert!(m.losses.last().unwrap() < &m.losses[0]);
        let r = evaluate(&m, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10) + 0.1, "BiasMF {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn bias_terms_affect_scores() {
        let d = presets::tiny_movielens(3);
        let m = BiasMf::fit(&d.graph, &BaselineConfig { epochs: 5, ..BaselineConfig::fast_test() });
        // Popular items should on average have larger biases than never-
        // interacted ones after training.
        let target = d.graph.target_user_item();
        let (mut pop_b, mut cold_b) = (Vec::new(), Vec::new());
        let mut degrees = vec![0usize; d.graph.n_items()];
        for (_, i, _) in target.iter() {
            degrees[i as usize] += 1;
        }
        for (i, &deg) in degrees.iter().enumerate() {
            if deg >= 5 {
                pop_b.push(m.item_bias.get(i, 0));
            } else if deg == 0 {
                cold_b.push(m.item_bias.get(i, 0));
            }
        }
        if !pop_b.is_empty() && !cold_b.is_empty() {
            assert!(gnmr_tensor::stats::mean(&pop_b) > gnmr_tensor::stats::mean(&cold_b));
        }
    }

    #[test]
    fn deterministic() {
        let d = presets::tiny_movielens(3);
        let cfg = BaselineConfig { epochs: 3, ..BaselineConfig::fast_test() };
        let a = BiasMf::fit(&d.graph, &cfg);
        let b = BiasMf::fit(&d.graph, &cfg);
        assert_eq!(a.score(0, &[1, 2, 3]), b.score(0, &[1, 2, 3]));
    }
}
