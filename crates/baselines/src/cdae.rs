//! CDAE (Wu et al., WSDM 2016): collaborative denoising autoencoder.
//! Like user-based AutoRec but with (a) input corruption (dropout on the
//! observed profile) and (b) a per-user embedding added to the hidden
//! layer.

use std::sync::Arc;

use gnmr_autograd::{Activation, Adam, Ctx, Linear, ParamStore};
use gnmr_eval::Recommender;
use gnmr_graph::{BatchSampler, MultiBehaviorGraph};
use gnmr_tensor::{init, rng, Matrix};
use rand::Rng;

use crate::common::{dense_rows, BaselineConfig};

/// A trained CDAE model.
pub struct Cdae {
    reconstruction: Matrix,
    /// Per-epoch training losses.
    pub losses: Vec<f32>,
}

impl Cdae {
    /// Trains CDAE on the target behavior with corruption level `0.2`.
    pub fn fit(graph: &MultiBehaviorGraph, cfg: &BaselineConfig) -> Self {
        let corruption = 0.2f32;
        let mut store = ParamStore::new();
        let mut init_rng = rng::substream(cfg.seed, 0xCDAE);
        let j = graph.n_items();
        let hidden_dim = cfg.dim * 2;
        let enc = Linear::new(&mut store, &mut init_rng, "enc", j, hidden_dim);
        let dec = Linear::new(&mut store, &mut init_rng, "dec", hidden_dim, j);
        store.insert("user_emb", init::normal(graph.n_users(), hidden_dim, 0.0, 0.1, &mut init_rng));
        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

        let ui = Arc::clone(graph.target_user_item());
        let sampler = BatchSampler::new(graph);
        let mut sample_rng = rng::substream(cfg.seed, 0xCDAF);
        let users_per_step = cfg.batch_users.max(1);
        let steps = sampler.eligible_users().len().div_ceil(users_per_step).max(1);
        let keep_scale = 1.0 / (1.0 - corruption);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0;
            for _ in 0..steps {
                let eligible = sampler.eligible_users();
                if eligible.is_empty() {
                    break;
                }
                let batch: Vec<u32> = (0..users_per_step)
                    .map(|_| eligible[sample_rng.gen_range(0..eligible.len())])
                    .collect();
                let clean = dense_rows(&ui, &batch);
                // Corrupt: drop observed entries with prob `corruption`,
                // rescaling survivors (inverted dropout).
                let mut corrupted = clean.clone();
                for v in corrupted.data_mut() {
                    if *v != 0.0 {
                        if sample_rng.gen_range(0.0f32..1.0) < corruption {
                            *v = 0.0;
                        } else {
                            *v *= keep_scale;
                        }
                    }
                }
                // Mask: positives + sampled negatives.
                let mut mask = clean.clone();
                for (r, &u) in batch.iter().enumerate() {
                    let n_pos = ui.row_nnz(u as usize);
                    for _ in 0..n_pos.max(1) {
                        let candidate = sample_rng.gen_range(0..j);
                        mask.row_mut(r)[candidate] = 1.0;
                    }
                }
                let batch_arc = Arc::new(batch);
                let mut ctx = Ctx::new(&store);
                let x_clean = ctx.constant(clean);
                let x_cor = ctx.constant(corrupted);
                let maskv = ctx.constant(mask);
                let user_emb = ctx.param("user_emb");
                let u_vec = ctx.g.gather_rows(user_emb, batch_arc);
                let enc_pre = enc.apply(&mut ctx, x_cor);
                let with_user = ctx.g.add(enc_pre, u_vec);
                let hidden = Activation::Sigmoid.apply(&mut ctx, with_user);
                let recon = dec.apply(&mut ctx, hidden);
                let diff = ctx.g.sub(recon, x_clean);
                let sq = ctx.g.sqr(diff);
                let masked = ctx.g.mul(sq, maskv);
                let loss = ctx.g.mean(masked);
                epoch_loss += ctx.g.value(loss).scalar_value();
                let mut grads = ctx.grads(loss);
                grads.clip_global_norm(5.0);
                opt.step(&mut store, &grads);
            }
            opt.decay_lr();
            losses.push(epoch_loss / steps as f32);
        }

        // Clean-input reconstruction for scoring.
        let all: Vec<u32> = (0..graph.n_users() as u32).collect();
        let mut reconstruction = Matrix::zeros(graph.n_users(), j);
        for chunk in all.chunks(512) {
            let chunk_arc = Arc::new(chunk.to_vec());
            let mut ctx = Ctx::new(&store);
            let x = ctx.constant(dense_rows(&ui, chunk));
            let user_emb = ctx.param("user_emb");
            let u_vec = ctx.g.gather_rows(user_emb, chunk_arc);
            let enc_pre = enc.apply(&mut ctx, x);
            let with_user = ctx.g.add(enc_pre, u_vec);
            let hidden = Activation::Sigmoid.apply(&mut ctx, with_user);
            let recon = dec.apply(&mut ctx, hidden);
            let r = ctx.g.value(recon);
            for (row, &u) in chunk.iter().enumerate() {
                reconstruction.row_mut(u as usize).copy_from_slice(r.row(row));
            }
        }
        Self { reconstruction, losses }
    }
}

impl Recommender for Cdae {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let row = self.reconstruction.row(user as usize);
        items.iter().map(|&i| row[i as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn trains_and_beats_random() {
        let d = presets::tiny_movielens(3);
        let m = Cdae::fit(&d.graph, &BaselineConfig { epochs: 15, ..BaselineConfig::fast_test() });
        assert!(m.losses.last().unwrap().is_finite());
        let r = evaluate(&m, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10), "CDAE {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn user_embedding_personalizes_reconstruction() {
        // Two users with disjoint profiles must get different
        // reconstructions.
        let d = presets::tiny_movielens(3);
        let m = Cdae::fit(&d.graph, &BaselineConfig { epochs: 5, ..BaselineConfig::fast_test() });
        let a = m.reconstruction.row(0);
        let b = m.reconstruction.row(1);
        assert!(a != b, "reconstructions identical");
    }
}
