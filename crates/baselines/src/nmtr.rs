//! NMTR (Gao et al., ICDE 2019): neural multi-task recommendation from
//! multi-behavior data.
//!
//! Shared user/item embeddings, a per-behavior GMF-style interaction
//! function, and a *cascaded* prediction over behavior types in their
//! natural order (`view -> ... -> target`):
//! `logit_k = s_k(u, i) + logit_{k-1}`. Training is multi-task: a
//! pairwise loss per behavior type, summed with uniform weights.

use std::sync::Arc;

use gnmr_autograd::{Adam, Ctx, ParamStore, Var};
use gnmr_eval::Recommender;
use gnmr_graph::MultiBehaviorGraph;
use gnmr_tensor::{init, rng, Matrix};
use rand::Rng;

use crate::common::BaselineConfig;

/// A trained NMTR model.
pub struct Nmtr {
    store: ParamStore,
    n_behaviors: usize,
    target: usize,
    /// Per-epoch training losses (summed over behavior tasks).
    pub losses: Vec<f32>,
}

fn score_behavior(
    ctx: &mut Ctx<'_>,
    k: usize,
    users: Arc<Vec<u32>>,
    items: Arc<Vec<u32>>,
) -> Var {
    let u = ctx.param("u");
    let v = ctx.param("v");
    let w = ctx.param(&format!("gmf{k}.w"));
    let b = ctx.param(&format!("gmf{k}.b"));
    let ue = ctx.g.gather_rows(u, users);
    let ie = ctx.g.gather_rows(v, items);
    let prod = ctx.g.mul(ue, ie);
    let s = ctx.g.matmul(prod, w);
    ctx.g.add_row_broadcast(s, b)
}

/// Cascaded logit up to and including behavior `k` (behaviors in index
/// order, which is the funnel order in all our datasets).
fn cascade_logit(
    ctx: &mut Ctx<'_>,
    k: usize,
    users: Arc<Vec<u32>>,
    items: Arc<Vec<u32>>,
) -> Var {
    let mut logit = score_behavior(ctx, 0, users.clone(), items.clone());
    for b in 1..=k {
        let s = score_behavior(ctx, b, users.clone(), items.clone());
        logit = ctx.g.add(logit, s);
    }
    logit
}

impl Nmtr {
    /// Trains NMTR over all behaviors of `graph`.
    pub fn fit(graph: &MultiBehaviorGraph, cfg: &BaselineConfig) -> Self {
        let k_types = graph.n_behaviors();
        let mut store = ParamStore::new();
        let mut init_rng = rng::substream(cfg.seed, 0x4273);
        store.insert("u", init::normal(graph.n_users(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("v", init::normal(graph.n_items(), cfg.dim, 0.0, 0.1, &mut init_rng));
        for k in 0..k_types {
            store.insert(format!("gmf{k}.w"), init::xavier_uniform(cfg.dim, 1, &mut init_rng));
            store.insert(format!("gmf{k}.b"), Matrix::zeros(1, 1));
        }

        // Eligible users per behavior.
        let eligible: Vec<Vec<u32>> = (0..k_types)
            .map(|k| {
                (0..graph.n_users() as u32)
                    .filter(|&u| !graph.user_items(u, k).is_empty())
                    .collect()
            })
            .collect();

        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut sample_rng = rng::substream(cfg.seed, 0x4274);
        let steps = eligible[graph.target()]
            .len()
            .div_ceil(cfg.batch_users.max(1))
            .max(1);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let mut epoch_loss = 0.0;
            for _ in 0..steps {
                let mut ctx = Ctx::new(&store);
                let mut total: Option<Var> = None;
                for k in 0..k_types {
                    if eligible[k].is_empty() {
                        continue;
                    }
                    // Sample a mini-batch of (user, pos, neg) for behavior k.
                    let mut users = Vec::with_capacity(cfg.batch_users * cfg.samples_per_user);
                    let mut pos = Vec::with_capacity(users.capacity());
                    let mut neg = Vec::with_capacity(users.capacity());
                    for _ in 0..cfg.batch_users {
                        let u = eligible[k][sample_rng.gen_range(0..eligible[k].len())];
                        let positives = graph.user_items(u, k);
                        for _ in 0..cfg.samples_per_user {
                            let p = positives[sample_rng.gen_range(0..positives.len())];
                            let n = loop {
                                let c = sample_rng.gen_range(0..graph.n_items() as u32);
                                if !graph.has_edge(u, c, k) {
                                    break c;
                                }
                            };
                            users.push(u);
                            pos.push(p);
                            neg.push(n);
                        }
                    }
                    let users = Arc::new(users);
                    let p_logit = cascade_logit(&mut ctx, k, users.clone(), Arc::new(pos));
                    let n_logit = cascade_logit(&mut ctx, k, users, Arc::new(neg));
                    let diff = ctx.g.sub(n_logit, p_logit);
                    let margin = ctx.g.add_scalar(diff, 1.0);
                    let hinge = ctx.g.relu(margin);
                    let task_loss = ctx.g.mean(hinge);
                    total = Some(match total {
                        Some(t) => ctx.g.add(t, task_loss),
                        None => task_loss,
                    });
                }
                let Some(loss) = total else { continue };
                epoch_loss += ctx.g.value(loss).scalar_value();
                let mut grads = ctx.grads(loss);
                grads.clip_global_norm(5.0);
                opt.step(&mut store, &grads);
            }
            opt.decay_lr();
            losses.push(epoch_loss / steps as f32);
        }
        Self { store, n_behaviors: k_types, target: graph.target(), losses }
    }
}

impl Recommender for Nmtr {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let users = Arc::new(vec![user; items.len()]);
        let items = Arc::new(items.to_vec());
        let mut ctx = Ctx::new(&self.store);
        let logit = cascade_logit(&mut ctx, self.target.min(self.n_behaviors - 1), users, items);
        ctx.g.value(logit).clone().into_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn trains_and_beats_random() {
        let d = presets::tiny_movielens(3);
        let m = Nmtr::fit(&d.graph, &BaselineConfig { epochs: 15, ..BaselineConfig::fast_test() });
        assert!(m.losses.last().unwrap().is_finite());
        let r = evaluate(&m, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10) + 0.1, "NMTR {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn registers_per_behavior_heads() {
        let d = presets::tiny_movielens(3);
        let m = Nmtr::fit(&d.graph, &BaselineConfig { epochs: 1, ..BaselineConfig::fast_test() });
        for k in 0..3 {
            assert!(m.store.contains(&format!("gmf{k}.w")));
        }
        assert_eq!(m.n_behaviors, 3);
    }

    #[test]
    fn works_on_funnel_data() {
        let d = presets::tiny_taobao(3);
        let m = Nmtr::fit(&d.graph, &BaselineConfig { epochs: 10, ..BaselineConfig::fast_test() });
        let r = evaluate(&m, &d.test, &[10]);
        assert!(r.hr_at(10).is_finite());
        assert!(r.hr_at(10) > 0.05, "NMTR on funnel: {:.3}", r.hr_at(10));
    }
}
