//! NGCF (Wang et al., SIGIR 2019): neural graph collaborative filtering
//! on the target-behavior interaction graph.
//!
//! Each layer propagates `m_u = A_norm E_v` with the bi-interaction term:
//! `e_u' = LeakyReLU((e_u + m_u) W1 + (m_u ⊙ e_u) W2)` (and symmetrically
//! for items); per-order embeddings are concatenated for scoring, as in
//! the original.

use std::sync::Arc;

use gnmr_autograd::{Ctx, ParamStore, Var};
use gnmr_eval::Recommender;
use gnmr_graph::MultiBehaviorGraph;
use gnmr_tensor::{init, rng, Csr, Matrix};

use crate::common::{train_pairwise, BaselineConfig};

/// A trained NGCF model.
pub struct Ngcf {
    user_repr: Matrix,
    item_repr: Matrix,
    /// Per-epoch training losses.
    pub losses: Vec<f32>,
}

struct NgcfNet {
    layers: usize,
    adj_ui: Arc<Csr>,
    adj_iu: Arc<Csr>,
}

impl NgcfNet {
    fn forward(&self, ctx: &mut Ctx<'_>) -> (Var, Var) {
        let mut e_u = ctx.param("emb.user");
        let mut e_v = ctx.param("emb.item");
        let mut user_orders = vec![e_u];
        let mut item_orders = vec![e_v];
        for l in 0..self.layers {
            let w1 = ctx.param(&format!("l{l}.w1"));
            let w2 = ctx.param(&format!("l{l}.w2"));
            let m_u = ctx.g.spmm(Arc::clone(&self.adj_ui), e_v);
            let m_v = ctx.g.spmm(Arc::clone(&self.adj_iu), e_u);

            let side = |ctx: &mut Ctx<'_>, e: Var, m: Var| -> Var {
                let self_plus_msg = ctx.g.add(e, m);
                let lin = ctx.g.matmul(self_plus_msg, w1);
                let bi = ctx.g.mul(m, e);
                let bi_lin = ctx.g.matmul(bi, w2);
                let s = ctx.g.add(lin, bi_lin);
                ctx.g.leaky_relu(s, 0.2)
            };
            let nu = side(ctx, e_u, m_u);
            let nv = side(ctx, e_v, m_v);
            user_orders.push(nu);
            item_orders.push(nv);
            e_u = nu;
            e_v = nv;
        }
        (ctx.g.concat_cols(&user_orders), ctx.g.concat_cols(&item_orders))
    }
}

impl Ngcf {
    /// Trains a 2-layer NGCF on the target behavior.
    pub fn fit(graph: &MultiBehaviorGraph, cfg: &BaselineConfig) -> Self {
        let layers = 2;
        let mut store = ParamStore::new();
        let mut init_rng = rng::substream(cfg.seed, 0x46CF);
        store.insert("emb.user", init::normal(graph.n_users(), cfg.dim, 0.0, 0.1, &mut init_rng));
        store.insert("emb.item", init::normal(graph.n_items(), cfg.dim, 0.0, 0.1, &mut init_rng));
        for l in 0..layers {
            store.insert(format!("l{l}.w1"), init::xavier_uniform(cfg.dim, cfg.dim, &mut init_rng));
            store.insert(format!("l{l}.w2"), init::xavier_uniform(cfg.dim, cfg.dim, &mut init_rng));
        }
        let net = NgcfNet {
            layers,
            adj_ui: Arc::new(graph.target_user_item().sym_normalized()),
            adj_iu: Arc::new(graph.item_user(graph.target()).sym_normalized()),
        };

        let losses = train_pairwise(graph, &mut store, cfg, |ctx, users, pos, neg| {
            let (u_all, v_all) = net.forward(ctx);
            let ue = ctx.g.gather_rows(u_all, users);
            let pe = ctx.g.gather_rows(v_all, pos);
            let ne = ctx.g.gather_rows(v_all, neg);
            (ctx.g.row_dot(ue, pe), ctx.g.row_dot(ue, ne))
        });

        let (user_repr, item_repr) = {
            let mut ctx = Ctx::new(&store);
            let (u, v) = net.forward(&mut ctx);
            (ctx.g.value(u).clone(), ctx.g.value(v).clone())
        };
        Self { user_repr, item_repr, losses }
    }
}

impl Recommender for Ngcf {
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let urow = self.user_repr.row(user as usize);
        items
            .iter()
            .map(|&i| urow.iter().zip(self.item_repr.row(i as usize)).map(|(a, b)| a * b).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnmr_data::presets;
    use gnmr_eval::{evaluate, RandomRecommender};

    #[test]
    fn trains_and_beats_random() {
        let d = presets::tiny_movielens(3);
        let m = Ngcf::fit(&d.graph, &BaselineConfig { epochs: 25, ..BaselineConfig::fast_test() });
        assert!(m.losses.last().unwrap() < &m.losses[0]);
        let r = evaluate(&m, &d.test, &[10]);
        let rnd = evaluate(&RandomRecommender::new(1), &d.test, &[10]);
        assert!(r.hr_at(10) > rnd.hr_at(10) + 0.1, "NGCF {:.3} vs random {:.3}", r.hr_at(10), rnd.hr_at(10));
    }

    #[test]
    fn representation_width_is_orders_times_dim() {
        let d = presets::tiny_movielens(3);
        let m = Ngcf::fit(&d.graph, &BaselineConfig { epochs: 1, dim: 8, ..BaselineConfig::fast_test() });
        assert_eq!(m.user_repr.cols(), 8 * 3); // order 0 + 2 layers
        assert_eq!(m.item_repr.cols(), 8 * 3);
        assert!(m.user_repr.is_finite());
    }
}
