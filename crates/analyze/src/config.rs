//! Analyzer configuration: which files may hold `unsafe`, which crates
//! are "numeric" (map-iteration-banned), the hot-path allocation
//! manifest, and the kernel-coverage file pair.
//!
//! [`Config::workspace`] encodes this repository's standing contracts
//! (ROADMAP "Standing constraints"); tests build custom configs to point
//! the engine at fixture trees.

use std::fmt;
use std::path::Path;

/// Every rule identifier the analyzer can emit. Pragmas are validated
/// against this list so a typoed `allow(...)` cannot silently suppress
/// nothing.
pub const RULE_IDS: &[&str] = &[
    "unsafe-confinement",
    "unsafe-safety-comment",
    "det-rng",
    "det-map-iter",
    "hot-alloc",
    "kernel-coverage",
    "sync-facade",
    "atomic-ordering-comment",
    "io-unwrap",
    "pragma-syntax",
];

/// One hot-path manifest entry: functions matching `pattern` inside
/// `file` must not allocate.
#[derive(Clone, Debug)]
pub struct ManifestEntry {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Function-name pattern: exact, or `*_suffix` (leading-star glob).
    pub pattern: String,
}

impl ManifestEntry {
    /// Whether `name` matches this entry's pattern.
    pub fn matches(&self, name: &str) -> bool {
        match self.pattern.strip_prefix('*') {
            Some(suffix) => name.ends_with(suffix),
            None => name == self.pattern,
        }
    }
}

impl fmt::Display for ManifestEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.file, self.pattern)
    }
}

/// Parses the checked-in manifest format: one `path pattern` pair per
/// line, `#` comments and blank lines ignored.
pub fn parse_manifest(text: &str) -> Result<Vec<ManifestEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (file, pattern) = (parts.next(), parts.next());
        match (file, pattern, parts.next()) {
            (Some(f), Some(p), None) => {
                entries.push(ManifestEntry { file: f.to_string(), pattern: p.to_string() })
            }
            _ => return Err(format!("manifest line {}: expected `path pattern`, got {raw:?}", i + 1)),
        }
    }
    Ok(entries)
}

/// The analyzer's rule configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Files (workspace-relative) allowed to contain `unsafe`.
    pub allowed_unsafe: Vec<String>,
    /// Path prefixes of the numeric crates, where map iteration is
    /// banned (map order leaks break "same seed, same bytes").
    pub numeric_prefixes: Vec<String>,
    /// Hot-path allocation manifest.
    pub hot_manifest: Vec<ManifestEntry>,
    /// The kernel entry-point file for the coverage rule, if any.
    pub kernels_file: Option<String>,
    /// The equivalence-suite file every kernel must be referenced from.
    pub equivalence_file: Option<String>,
    /// Model-checked files that must route all synchronization through
    /// the `crate::sync` facade (no direct `std::sync`/`std::thread`).
    pub facade_files: Vec<String>,
    /// Audited concurrency files where every `Ordering::` use site
    /// needs a justifying `// ORDERING:` comment.
    pub ordering_comment_files: Vec<String>,
    /// Path prefixes of the crash-safety crates, where `.unwrap()` /
    /// `.expect(..)` on an `io::Result` is banned in non-test code
    /// (checkpoint/snapshot I/O must propagate typed errors).
    pub io_unwrap_prefixes: Vec<String>,
}

impl Config {
    /// The configuration for this workspace's standing contracts. The
    /// hot-path manifest is loaded separately (it is a checked-in file;
    /// see [`Config::load_manifest`]).
    pub fn workspace() -> Self {
        Config {
            allowed_unsafe: vec![
                "crates/tensor/src/par.rs".to_string(),
                "crates/bench/src/alloc.rs".to_string(),
            ],
            numeric_prefixes: vec![
                "crates/tensor/".to_string(),
                "crates/autograd/".to_string(),
                "crates/graph/".to_string(),
                "crates/core/".to_string(),
                "crates/baselines/".to_string(),
                "crates/eval/".to_string(),
                "crates/serve/".to_string(),
            ],
            hot_manifest: Vec::new(),
            kernels_file: Some("crates/tensor/src/kernels.rs".to_string()),
            equivalence_file: Some("crates/tensor/tests/par_equivalence.rs".to_string()),
            facade_files: vec!["crates/tensor/src/par.rs".to_string()],
            ordering_comment_files: vec![
                "crates/tensor/src/par.rs".to_string(),
                "crates/bench/src/alloc.rs".to_string(),
            ],
            io_unwrap_prefixes: vec![
                "crates/serve/src/".to_string(),
                "crates/core/src/".to_string(),
            ],
        }
    }

    /// Workspace-relative location of the checked-in hot-path manifest.
    pub const MANIFEST_PATH: &'static str = "crates/analyze/hotpath.manifest";

    /// Loads the hot-path manifest from its checked-in location under
    /// `root` into `self`. Errors if the file is missing or malformed —
    /// a silently absent manifest would make the hot-alloc rule pass
    /// vacuously.
    pub fn load_manifest(&mut self, root: &Path) -> Result<(), String> {
        let path = root.join(Self::MANIFEST_PATH);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        self.hot_manifest = parse_manifest(&text)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_patterns_match() {
        let exact = ManifestEntry { file: "a.rs".into(), pattern: "sgd_step".into() };
        assert!(exact.matches("sgd_step"));
        assert!(!exact.matches("sgd_step_with"));
        let glob = ManifestEntry { file: "a.rs".into(), pattern: "*_acc".into() };
        assert!(glob.matches("matmul_acc"));
        assert!(glob.matches("spmm_t_acc"));
        assert!(!glob.matches("matmul_acc_with"));
    }

    #[test]
    fn manifest_parses_and_rejects_garbage() {
        let good = "# comment\n\ncrates/a.rs *_acc\ncrates/b.rs backward_with\n";
        let entries = parse_manifest(good).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].file, "crates/a.rs");
        assert!(parse_manifest("just-one-field\n").is_err());
        assert!(parse_manifest("a b c\n").is_err());
    }
}
