//! The six rule families. Each is a pure function from tokens (plus
//! configuration) to findings; the engine owns file IO and suppression.

pub mod determinism;
pub mod hot_alloc;
pub mod io_unwrap;
pub mod kernel_coverage;
pub mod sync_protocol;
pub mod unsafe_confinement;
