//! Rule family 4: kernel equivalence coverage.
//!
//! `crates/tensor/src/kernels.rs` is the designated landing zone for
//! SIMD and alternate-backend work, and the bitwise-equivalence suite
//! (`crates/tensor/tests/par_equivalence.rs`) is what keeps every
//! parallel/fused path byte-identical to its serial reference. This
//! rule closes the gap between them: **every `pub fn` in the kernels
//! file must be referenced from the equivalence suite**, so a new
//! kernel cannot land without at least appearing in the file whose job
//! is to pin its bytes. (Appearing is a floor, not a proof — but it
//! turns "forgot to test the new kernel entirely" from a review miss
//! into a CI failure.)
//!
//! Findings anchor at the `pub fn` line in the kernels file, so a
//! deliberately-uncovered helper can carry its own
//! `// gnmr-analyze: allow(kernel-coverage) -- reason` pragma.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;

/// Collects `(name, line)` of every externally-visible `pub fn` in a
/// token stream (including `pub unsafe`/`pub const` forms).
/// Restricted visibility — `pub(crate)`, `pub(super)`, `pub(in …)` —
/// is excluded: an integration test under `tests/` cannot name those,
/// so demanding coverage for them would be unsatisfiable.
pub fn pub_fns(tokens: &[Tok]) -> Vec<(String, u32)> {
    let toks: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        if is_pub(&toks, i) {
            out.push((name_tok.text.clone(), name_tok.line));
        }
    }
    out
}

/// Whether the `fn` at index `i` is unrestricted `pub`: walk back over
/// qualifier keywords (`unsafe`, `const`, `async`, `extern "C"`) to
/// find a `pub` token NOT followed by a `(...)` restriction —
/// `pub(crate)` and friends are deliberately not pub for this rule's
/// purposes (see [`pub_fns`]).
fn is_pub(toks: &[&Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = toks[j];
        match t.kind {
            TokKind::Ident if matches!(t.text.as_str(), "unsafe" | "const" | "async" | "extern") => {}
            TokKind::Str => {} // the "C" of `extern "C"`
            TokKind::Ident => return t.text == "pub",
            TokKind::Punct if t.ch == ')' => {
                // `pub(crate)` / `pub(in path)`: restricted, not
                // reachable from an integration test.
                return false;
            }
            _ => return false,
        }
    }
    false
}

/// Checks that every public kernel entry point is referenced (by name,
/// anywhere) in the equivalence suite.
pub fn check(
    kernels_file: &str,
    kernels_tokens: &[Tok],
    equivalence_file: &str,
    equivalence_tokens: &[Tok],
) -> Vec<Finding> {
    let referenced: BTreeSet<&str> = equivalence_tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    pub_fns(kernels_tokens)
        .into_iter()
        .filter(|(name, _)| !referenced.contains(name.as_str()))
        .map(|(name, line)| Finding {
            file: kernels_file.to_string(),
            line,
            rule: "kernel-coverage",
            message: format!(
                "pub kernel `{name}` is not referenced from {equivalence_file}; add it to \
                 the bitwise-equivalence suite"
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn collects_pub_fns_in_all_forms() {
        let src = "pub fn a() {}\nfn private() {}\npub unsafe fn c() {}\npub const fn d() {}\nimpl X { pub fn method(&self) {} }";
        let fns: Vec<String> = pub_fns(&lex(src)).into_iter().map(|(n, _)| n).collect();
        assert_eq!(fns, vec!["a", "c", "d", "method"]);
    }

    #[test]
    fn restricted_visibility_is_not_pub() {
        // tests/ files cannot call these, so coverage cannot demand them.
        let src = "pub(crate) fn b() {}\npub(super) fn s() {}\npub(in crate::par) fn p() {}\n";
        assert!(pub_fns(&lex(src)).is_empty());
    }

    #[test]
    fn unreferenced_kernel_is_flagged_at_its_line() {
        let kernels = "pub fn covered(x: f32) -> f32 { x }\n\npub fn forgotten(x: f32) -> f32 { x }\n";
        let suite = "#[test]\nfn t() { assert_eq!(covered(1.0), 1.0); }\n";
        let f = check("k.rs", &lex(kernels), "suite.rs", &lex(suite));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "kernel-coverage");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("forgotten"));
    }

    #[test]
    fn reference_in_suite_comment_does_not_count() {
        let kernels = "pub fn ghost() {}\n";
        let suite = "// ghost is tested elsewhere, honest\nfn t() {}\n";
        let f = check("k.rs", &lex(kernels), "suite.rs", &lex(suite));
        assert_eq!(f.len(), 1, "comment mentions must not satisfy coverage");
    }

    #[test]
    fn private_helpers_are_exempt() {
        let kernels = "fn helper() {}\npub fn entry() { helper() }\n";
        let suite = "fn t() { entry(); }\n";
        assert!(check("k.rs", &lex(kernels), "s.rs", &lex(suite)).is_empty());
    }
}
