//! Rule family 2: determinism.
//!
//! "Same seed, same bytes" is the repo's contract (ROADMAP standing
//! constraint): every training run, at every thread count, reproduces
//! bit-identical parameters. Two things silently break it:
//!
//! * **Ambient entropy** — `thread_rng`, `SystemTime`, `from_entropy`
//!   pull nondeterministic state into what must be a pure function of
//!   the seed. Banned everywhere (`det-rng`).
//! * **Map-order leaks** — iterating a `HashMap`/`HashSet` yields an
//!   order that varies per process (`RandomState`), so any float
//!   accumulation, kernel dispatch, or output ordering driven by it
//!   diverges run-to-run. Banned in the numeric crates
//!   (`det-map-iter`); keyed lookups stay fine.
//!
//! Detection is a token heuristic, not a type check: the rule tracks
//! names declared with `HashMap`/`HashSet` in their type or initializer
//! (fields, params, lets) and flags `.iter()`-family calls on them,
//! map-specific calls (`.keys()`, `.values()`, `.values_mut()`,
//! `.drain()`) in any file that declares a map, and `for ... in` loops
//! whose iterated expression mentions a tracked map name. False
//! positives have the pragma escape hatch; false negatives are bounded
//! by review, as before — the lint just removes the common cases from
//! reviewer memory.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;

/// Entropy sources that cannot appear anywhere in the workspace.
const BANNED_ENTROPY: &[&str] = &["thread_rng", "SystemTime", "from_entropy"];

/// Map-declaring type names.
const MAP_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods flagged only on receivers known to be maps.
const GENERIC_ITER: &[&str] = &["iter", "iter_mut", "into_iter", "drain", "retain"];

/// Iteration methods specific enough to maps to flag on any receiver
/// once the file declares at least one map.
const MAP_ONLY_ITER: &[&str] = &["keys", "values", "values_mut"];

/// `det-rng`: flags ambient-entropy identifiers. Applies to every file.
pub fn check_rng(file: &str, tokens: &[Tok]) -> Vec<Finding> {
    tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident && BANNED_ENTROPY.contains(&t.text.as_str()))
        .map(|t| Finding {
            file: file.to_string(),
            line: t.line,
            rule: "det-rng",
            message: format!(
                "`{}` injects ambient entropy; derive all randomness from the run seed \
                 (gnmr_tensor::rng)",
                t.text
            ),
        })
        .collect()
}

/// `det-map-iter`: flags HashMap/HashSet iteration. The engine applies
/// this only to files under the configured numeric-crate prefixes.
pub fn check_map_iter(file: &str, tokens: &[Tok]) -> Vec<Finding> {
    let names = map_names(tokens);
    if names.is_empty() && !tokens.iter().any(|t| t.kind == TokKind::Ident && MAP_TYPES.contains(&t.text.as_str())) {
        return Vec::new();
    }
    let mut found: BTreeSet<(u32, String)> = BTreeSet::new();

    let toks: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for i in 0..toks.len() {
        // `.keys()` / `.values()` / `.values_mut()` are map-specific
        // enough to flag on *any* receiver (chains through
        // `.lock().unwrap()` included) once the file declares a map.
        if i + 2 < toks.len()
            && toks[i].is_punct('.')
            && toks[i + 1].kind == TokKind::Ident
            && MAP_ONLY_ITER.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('(')
        {
            found.insert((toks[i + 1].line, format!(".{}()", toks[i + 1].text)));
        }
        // `name.iter()` / `self.name.drain()` — generic iteration
        // methods flag only when the ident directly before the dot is a
        // tracked map name.
        if i + 3 < toks.len()
            && toks[i].kind == TokKind::Ident
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is_punct('(')
            && names.contains(toks[i].text.as_str())
            && GENERIC_ITER.contains(&toks[i + 2].text.as_str())
        {
            found.insert((toks[i + 2].line, format!(".{}()", toks[i + 2].text)));
        }
        // `for pat in <expr> {` — flag if the iterated expression
        // mentions a tracked map name.
        if toks[i].is_ident("for") {
            if let Some(in_idx) = find_loop_in(&toks, i) {
                let mut j = in_idx + 1;
                let mut depth = 0i32;
                while j < toks.len() {
                    let t = toks[j];
                    match t.kind {
                        TokKind::Punct => match t.ch {
                            '(' | '[' => depth += 1,
                            ')' | ']' => depth -= 1,
                            '{' if depth == 0 => break,
                            _ => {}
                        },
                        TokKind::Ident if names.contains(t.text.as_str()) => {
                            found.insert((t.line, format!("for ... in {}", t.text)));
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
    }

    found
        .into_iter()
        .map(|(line, what)| Finding {
            file: file.to_string(),
            line,
            rule: "det-map-iter",
            message: format!(
                "{what} iterates a HashMap/HashSet in a numeric crate; map order is \
                 per-process random and leaks into results — use BTreeMap/BTreeSet, a \
                 sorted Vec, or restructure"
            ),
        })
        .collect()
}

/// Names declared with a `HashMap`/`HashSet` type annotation or
/// constructor anywhere in the file (fields, params, lets, statics).
fn map_names(tokens: &[Tok]) -> BTreeSet<String> {
    let toks: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: <type tokens containing HashMap>` up to a depth-0
        // terminator. Also matches struct fields and fn params.
        if i + 1 < toks.len() && toks[i + 1].is_punct(':') {
            // Skip `::` paths — `name::thing` is not a declaration.
            if i + 2 < toks.len() && toks[i + 2].is_punct(':') {
                continue;
            }
            let mut depth = 0i32;
            for t in toks.iter().skip(i + 2) {
                match t.kind {
                    TokKind::Punct => match t.ch {
                        '<' | '(' | '[' => depth += 1,
                        '>' | ')' | ']' if depth > 0 => depth -= 1,
                        ',' | ';' | '=' | '{' if depth == 0 => break,
                        ')' | '>' => break, // closing an outer scope
                        _ => {}
                    },
                    TokKind::Ident if MAP_TYPES.contains(&t.text.as_str()) => {
                        names.insert(toks[i].text.clone());
                        break;
                    }
                    TokKind::Ident
                        if matches!(
                            t.text.as_str(),
                            // Type constructors a map can sit inside and
                            // still be the thing iterated after unwrapping.
                            "Mutex" | "RwLock" | "Option" | "Box" | "Arc" | "Rc" | "RefCell"
                                | "Cell" | "Vec"
                        ) => {}
                    TokKind::Ident => {} // other type names: keep scanning generics
                    _ => {}
                }
            }
        }
        // `name = HashMap::new()` / `= HashSet::from_iter(...)`.
        if i + 2 < toks.len()
            && toks[i + 1].is_punct('=')
            && toks[i + 2].kind == TokKind::Ident
            && MAP_TYPES.contains(&toks[i + 2].text.as_str())
        {
            names.insert(toks[i].text.clone());
        }
    }
    names
}

/// Finds the `in` of a `for ... in` loop, skipping the pattern tokens.
fn find_loop_in(toks: &[&Tok], for_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(for_idx + 1) {
        if t.kind == TokKind::Punct {
            match t.ch {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' | ';' => return None, // `for` in a generic bound etc.
                _ => {}
            }
        }
        if depth == 0 && t.is_ident("in") {
            return Some(j);
        }
        if j > for_idx + 32 {
            return None; // patterns are short; bail on weird code
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn ambient_entropy_is_flagged_everywhere() {
        let toks = lex("let mut r = rand::thread_rng();\nlet t = SystemTime::now();");
        let f = check_rng("x.rs", &toks);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "det-rng");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn entropy_in_strings_not_flagged() {
        let toks = lex("let s = \"thread_rng\"; // mentions from_entropy");
        assert!(check_rng("x.rs", &toks).is_empty());
    }

    #[test]
    fn direct_map_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, f32>) -> f32 {\n    m.iter().map(|(_, v)| v).sum()\n}";
        let f = check_map_iter("x.rs", &lex(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "det-map-iter");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn field_iteration_through_self_is_flagged() {
        let src = "struct S { entries: HashMap<String, f32> }\nimpl S {\n    fn sum(&self) -> f32 { self.entries.values().sum() }\n}";
        let f = check_map_iter("x.rs", &lex(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn for_loop_over_map_reference_is_flagged() {
        let src = "fn f(bound: HashMap<String, u32>) {\n    for (k, v) in &bound { use_it(k, v); }\n}";
        let f = check_map_iter("x.rs", &lex(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn chained_values_after_lock_is_flagged() {
        // Receiver resolution fails through `.lock().unwrap()`, but
        // `.values()` is map-specific and the file declares a map.
        let src = "struct A { shelves: Mutex<HashMap<(usize, usize), Vec<f32>>> }\nimpl A {\n    fn n(&self) -> usize { self.shelves.lock().unwrap().values().map(Vec::len).sum() }\n}";
        let f = check_map_iter("x.rs", &lex(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn keyed_lookups_are_fine() {
        let src = "fn f(m: &HashMap<String, u32>, k: &str) -> Option<u32> {\n    m.get(k).copied()\n}";
        assert!(check_map_iter("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn vec_iteration_in_map_file_is_fine() {
        let src = "fn f(m: &HashMap<String, u32>, v: &[u32]) -> u32 {\n    let items: Vec<u32> = v.to_vec();\n    items.iter().sum()\n}";
        assert!(check_map_iter("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<String, u32>) -> u32 { m.values().sum() }";
        // No HashMap/HashSet declared anywhere: nothing to flag, even
        // though `.values()` appears.
        assert!(check_map_iter("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn map_inside_mutex_annotation_is_tracked() {
        let src = "struct A { shelves: Mutex<HashMap<u32, u32>> }\nfn f(a: &A) { for x in a.shelves.lock().unwrap().iter() { use_it(x); } }";
        // `shelves` is tracked through the Mutex wrapper; `.iter()` on a
        // resolved-through-lock receiver is caught by the for-expr scan.
        let f = check_map_iter("x.rs", &lex(src));
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
