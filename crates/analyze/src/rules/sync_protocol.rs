//! Rule family 5: the model-checked sync protocol.
//!
//! `crates/tensor/src/par.rs` is model checked by `gnmr-check`, which
//! recompiles the same source against a virtual-thread scheduler. That
//! only works if the protocol performs *every* synchronization through
//! the `crate::sync` facade — a direct `std::sync` / `std::thread` call
//! would execute for real inside the model, invisible to the explorer.
//! Two rules keep the arrangement sound:
//!
//! * `sync-facade` — inside the facade-bound files, naming `std::sync`
//!   or `std::thread` is a finding (the facade re-exports or wraps
//!   everything the protocol needs);
//! * `atomic-ordering-comment` — every `Ordering::...` use site in the
//!   audited concurrency files must be preceded (within
//!   [`ORDERING_WINDOW`] lines) by a comment containing `ORDERING:`
//!   arguing why that ordering suffices. The model is sequentially
//!   consistent, so relaxed-ordering soundness can only be established
//!   by local argument — this rule makes the argument mandatory, the
//!   same discipline `SAFETY:` comments impose on `unsafe`.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Finding;

/// How many lines above an `Ordering::` use an `ORDERING:` comment may
/// end and still count as covering it (mirrors `SAFETY_WINDOW`).
pub const ORDERING_WINDOW: u32 = 3;

/// Runs the sync-protocol family over one file.
pub fn check(file: &str, tokens: &[Tok], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    if cfg.facade_files.iter().any(|p| p == file) {
        findings.extend(check_facade(file, tokens));
    }
    if cfg.ordering_comment_files.iter().any(|p| p == file) {
        findings.extend(check_ordering_comments(file, tokens));
    }
    findings
}

/// Flags `std::sync` / `std::thread` paths; code tokens only (comments
/// and strings may discuss the modules freely).
fn check_facade(file: &str, tokens: &[Tok]) -> Vec<Finding> {
    let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut findings = Vec::new();
    for w in code.windows(4) {
        if w[0].is_ident("std")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && (w[3].is_ident("sync") || w[3].is_ident("thread"))
        {
            findings.push(Finding {
                file: file.to_string(),
                line: w[0].line,
                rule: "sync-facade",
                message: format!(
                    "direct `std::{}` use in a model-checked file; route it through \
                     `crate::sync` so gnmr-check sees the operation",
                    w[3].text
                ),
            });
        }
    }
    findings
}

/// Flags `Ordering::...` uses lacking a nearby `// ORDERING:` comment.
/// Bare `Ordering` identifiers (imports, type positions) are exempt —
/// only use sites pick a memory ordering.
fn check_ordering_comments(file: &str, tokens: &[Tok]) -> Vec<Finding> {
    let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut findings = Vec::new();
    for w in code.windows(3) {
        if w[0].is_ident("Ordering")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && !has_ordering_comment(tokens, w[0].line)
        {
            findings.push(Finding {
                file: file.to_string(),
                line: w[0].line,
                rule: "atomic-ordering-comment",
                message: "`Ordering::` use without a preceding `// ORDERING:` comment \
                          arguing why this ordering suffices"
                    .to_string(),
            });
        }
    }
    findings
}

/// Whether a comment *run* containing `ORDERING:` ends within
/// [`ORDERING_WINDOW`] lines above `line` (or on it). Consecutive
/// line comments coalesce into one run, so a multi-line argument whose
/// `ORDERING:` tag sits on the first line still covers a use just
/// below the run's last line.
fn has_ordering_comment(tokens: &[Tok], line: u32) -> bool {
    let lo = line.saturating_sub(ORDERING_WINDOW);
    let mut tagged = false; // current run mentions ORDERING:
    let mut run_end = 0u32; // last line of the current run
    for t in tokens {
        if t.is_comment() && (run_end == 0 || t.line <= run_end + 1) {
            tagged |= t.text.contains("ORDERING:");
            run_end = run_end.max(t.end_line);
        } else if t.is_comment() {
            // A gap starts a new run.
            tagged = t.text.contains("ORDERING:");
            run_end = t.end_line;
        } else {
            continue;
        }
        if tagged && run_end >= lo && run_end <= line {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg() -> Config {
        Config {
            facade_files: vec!["par.rs".to_string()],
            ordering_comment_files: vec!["par.rs".to_string()],
            ..Config::default()
        }
    }

    #[test]
    fn std_sync_in_facade_file_is_flagged() {
        let toks = lex("use std::sync::Mutex;\n");
        let f = check("par.rs", &toks, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "sync-facade");
        assert!(f[0].message.contains("std::sync"));
    }

    #[test]
    fn std_thread_in_facade_file_is_flagged() {
        let toks = lex("fn f() { std::thread::spawn(|| {}); }\n");
        let f = check("par.rs", &toks, &cfg());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("std::thread"));
    }

    #[test]
    fn facade_rule_ignores_other_files_and_other_std_paths() {
        let toks = lex("use std::sync::Mutex;\n");
        assert!(check("other.rs", &toks, &cfg()).is_empty());
        let toks = lex("use std::panic::AssertUnwindSafe;\nuse std::collections::VecDeque;\n");
        assert!(check("par.rs", &toks, &cfg()).is_empty());
    }

    #[test]
    fn facade_rule_ignores_comments_and_strings() {
        let toks = lex("// never name std::sync here\nlet s = \"std::thread\";\n");
        assert!(check("par.rs", &toks, &cfg()).is_empty());
    }

    #[test]
    fn ordering_without_comment_is_flagged() {
        let toks = lex("fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n");
        let f = check("par.rs", &toks, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "atomic-ordering-comment");
    }

    #[test]
    fn ordering_with_comment_passes() {
        let toks = lex(
            "fn f(a: &AtomicUsize) {\n    // ORDERING: Relaxed — standalone flag.\n    a.load(Ordering::Relaxed);\n}\n",
        );
        assert!(check("par.rs", &toks, &cfg()).is_empty());
    }

    #[test]
    fn ordering_comment_too_far_above_does_not_count() {
        let src = "// ORDERING: stale\n\n\n\n\n\nfn f(a: &AtomicUsize) { a.load(Ordering::SeqCst); }";
        let f = check("par.rs", &lex(src), &cfg());
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn multi_line_ordering_run_covers_use_below_it() {
        // The tag is on the first of five comment lines; the run's
        // *end* is what the window is measured from.
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   // ORDERING: Relaxed — the counter only\n\
                   \x20   // partitions indices; fetch_add atomicity\n\
                   \x20   // alone guarantees uniqueness, and outputs\n\
                   \x20   // reach the caller through the done mutex,\n\
                   \x20   // whose unlock/lock pair orders them.\n\
                   \x20   a.load(Ordering::Relaxed);\n}\n";
        assert!(check("par.rs", &lex(src), &cfg()).is_empty());
    }

    #[test]
    fn bare_ordering_import_is_exempt() {
        let toks = lex("use crate::sync::atomic::{AtomicUsize, Ordering};\n");
        assert!(check("par.rs", &toks, &cfg()).is_empty());
    }
}
