//! Rule family 3: hot-path allocation.
//!
//! PR 5 made the steady-state backward + optimizer path perform zero
//! heap allocations, and a counting-allocator CI gate pins the measured
//! count. That gate is *dynamic*: it only sees code the benchmark
//! executes. This rule is the static complement — functions named in
//! the checked-in manifest (`crates/analyze/hotpath.manifest`: the tape
//! `backward_with`, the fused optimizers, the in-place
//! `*_acc`/`*_assign`/`*_into` kernel family) must not contain
//! allocating constructs at all, so an allocation on a branch the bench
//! never takes is still caught.
//!
//! Banned inside a manifest function body: `vec![..]`, `format!(..)`,
//! `Vec::...`, `Box::...`, `String::...`, `Matrix::zeros`/`ones`/
//! `filled`/`from_vec`/`from_elem`, and the methods `.clone()`,
//! `.collect()`, `.to_vec()`, `.to_string()`, `.to_owned()`. Arena
//! checkouts are *not* banned: recycling through the arena is the
//! sanctioned way for hot code to obtain storage.

use crate::config::ManifestEntry;
use crate::lexer::{Tok, TokKind};
use crate::report::Finding;

/// Macro and path-based constructors that always allocate.
const BANNED_PATH_ROOTS: &[&str] = &["Vec", "Box", "String"];
const BANNED_MATRIX_CTORS: &[&str] = &["zeros", "ones", "filled", "from_vec", "from_elem"];
const BANNED_MACROS: &[&str] = &["vec", "format"];
const BANNED_METHODS: &[&str] = &["clone", "collect", "to_vec", "to_string", "to_owned"];

/// Runs the hot-alloc rule over one file for the manifest entries that
/// name it.
pub fn check(file: &str, tokens: &[Tok], entries: &[&ManifestEntry]) -> Vec<Finding> {
    let toks: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut findings = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            if entries.iter().any(|e| e.matches(&name)) {
                if let Some((body_start, body_end)) = body_range(&toks, i + 2) {
                    scan_body(file, &name, &toks[body_start..body_end], &mut findings);
                    // Continue *after the signature*, not after the body:
                    // nested fns inside the body are their own defs, but
                    // the outer scan already covered their tokens.
                    i = body_end;
                    continue;
                }
            }
        }
        i += 1;
    }
    findings
}

/// Token range (exclusive of braces) of the fn body whose signature
/// starts at `from`: the first `{` outside parentheses, brace-matched
/// to its close.
fn body_range(toks: &[&Tok], from: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut j = from;
    while j < toks.len() {
        let t = toks[j];
        if t.kind == TokKind::Punct {
            match t.ch {
                '(' => paren += 1,
                ')' => paren -= 1,
                '{' if paren == 0 => break,
                ';' if paren == 0 => return None, // trait method decl, no body
                _ => {}
            }
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let start = j + 1;
    let mut depth = 1i32;
    let mut k = start;
    while k < toks.len() && depth > 0 {
        if toks[k].kind == TokKind::Punct {
            match toks[k].ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        k += 1;
    }
    Some((start, k.saturating_sub(1)))
}

fn scan_body(file: &str, fn_name: &str, body: &[&Tok], findings: &mut Vec<Finding>) {
    let mut push = |line: u32, what: String| {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "hot-alloc",
            message: format!(
                "{what} allocates inside hot-path fn `{fn_name}` (named in {}); \
                 use arena checkouts or in-place kernels",
                crate::config::Config::MANIFEST_PATH
            ),
        });
    };
    for i in 0..body.len() {
        let t = body[i];
        if t.kind != TokKind::Ident && !(t.kind == TokKind::Punct && t.ch == '.') {
            continue;
        }
        // `vec![`, `format!(`
        if t.kind == TokKind::Ident
            && BANNED_MACROS.contains(&t.text.as_str())
            && body.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(t.line, format!("`{}!`", t.text));
        }
        // `Vec::`, `Box::`, `String::`, `Matrix::zeros` etc.
        if t.kind == TokKind::Ident
            && body.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && body.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let callee = body.get(i + 3).map(|n| n.text.as_str()).unwrap_or("");
            if BANNED_PATH_ROOTS.contains(&t.text.as_str()) {
                push(t.line, format!("`{}::{}`", t.text, callee));
            } else if t.text == "Matrix" && BANNED_MATRIX_CTORS.contains(&callee) {
                push(t.line, format!("`Matrix::{callee}`"));
            }
        }
        // `.clone()`, `.collect()`, ...
        if t.kind == TokKind::Punct
            && t.ch == '.'
            && body.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && BANNED_METHODS.contains(&n.text.as_str())
            })
            && body.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            push(body[i + 1].line, format!("`.{}()`", body[i + 1].text));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ManifestEntry;
    use crate::lexer::lex;

    fn entries() -> Vec<ManifestEntry> {
        vec![
            ManifestEntry { file: "k.rs".into(), pattern: "*_acc".into() },
            ManifestEntry { file: "k.rs".into(), pattern: "sgd_step".into() },
        ]
    }

    fn run(src: &str) -> Vec<Finding> {
        let es = entries();
        let refs: Vec<&ManifestEntry> = es.iter().collect();
        check("k.rs", &lex(src), &refs)
    }

    #[test]
    fn clone_in_manifest_fn_is_flagged() {
        let f = run("pub fn matmul_acc(d: &mut M, a: &M) {\n    let tmp = a.clone();\n    d.add(&tmp);\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-alloc");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("matmul_acc"));
    }

    #[test]
    fn vec_macro_and_ctor_flagged() {
        let f = run("fn sgd_step(w: &mut M) {\n    let a = vec![0.0; 4];\n    let b = Vec::with_capacity(3);\n    let m = Matrix::zeros(2, 2);\n}");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].message.contains("`vec!`"));
        assert!(f[1].message.contains("`Vec::with_capacity`"));
        assert!(f[2].message.contains("`Matrix::zeros`"));
    }

    #[test]
    fn non_manifest_fn_may_allocate() {
        let f = run("pub fn matmul_with(a: &M) -> M {\n    let out = Matrix::zeros(1, 1);\n    out\n}");
        assert!(f.is_empty());
    }

    #[test]
    fn in_place_body_is_clean() {
        let f = run("pub fn spmm_acc(d: &mut M, a: &M) {\n    for (o, &x) in d.data_mut().iter_mut().zip(a.data()) {\n        *o += x;\n    }\n}");
        assert!(f.is_empty());
    }

    #[test]
    fn allocation_in_comment_or_string_ignored() {
        let f = run("pub fn x_acc(d: &mut M) {\n    // the old path did a.clone() here\n    let s = \"vec![]\";\n    let _ = s;\n}");
        assert!(f.is_empty());
    }

    #[test]
    fn generic_signature_body_found() {
        let f = run("pub fn zip_acc<F: Fn(f32) -> f32>(d: &mut M, f: F) where F: Sync {\n    let t = d.clone();\n}");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn trait_method_decl_without_body_is_skipped() {
        let f = run("trait T { fn frob_acc(&mut self); }\nfn other() { let v = vec![1]; }");
        assert!(f.is_empty());
    }
}
