//! Rule family 6: io-unwrap.
//!
//! Crash-safety code must *propagate* I/O failures, never panic on them
//! (ROADMAP standing constraint: all checkpoint/snapshot I/O goes
//! through the fault-injectable layer, and a torn disk is an error the
//! caller handles, not a crash). An `.unwrap()`/`.expect(..)` on an
//! `io::Result` turns every injected fault — and every real ENOSPC —
//! into an abort that skips the keep-the-previous-generation path.
//!
//! Detection is a token heuristic, like the determinism family: the
//! rule flags `.unwrap()`/`.expect(` whose receiver is a direct call to
//! a known I/O producer. Two name sets keep false positives out:
//!
//! * **method names** (`save`, `load`, `write_all`, `atomic_write`,
//!   ...) flag as both `.name(...)` method calls and bare calls;
//! * **path-only names** (`read`, `write`, `open`, `rename`, ...) are
//!   too generic as methods — `RwLock::read`, `Vec::write` lookalikes —
//!   so they flag only when called `::name(...)`, the `std::fs` shape.
//!
//! `#[cfg(test)]` modules are skipped: tests unwrapping their own
//! fixtures is idiomatic. The engine applies this rule only under the
//! configured `io_unwrap_prefixes` (the crash-safety crates' `src/`
//! trees); false positives retain the pragma escape hatch.

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;

/// I/O-producing names safe to flag in any call position.
const METHOD_IO: &[&str] = &[
    "save",
    "load",
    "save_with",
    "load_with",
    "write_all",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "sync_all",
    "sync_data",
    "set_len",
    "flush",
    "atomic_write",
    "read_bytes",
];

/// I/O-producing names flagged only as `::name(...)` path calls.
const PATH_IO: &[&str] = &[
    "read",
    "write",
    "create",
    "create_new",
    "open",
    "rename",
    "remove_file",
    "remove_dir_all",
    "copy",
    "metadata",
    "create_dir",
    "create_dir_all",
];

/// `io-unwrap`: flags `.unwrap()`/`.expect(` on the result of a known
/// I/O call, outside `#[cfg(test)]` modules. The engine applies this
/// only to files under the configured crash-safety prefixes.
pub fn check(file: &str, tokens: &[Tok]) -> Vec<Finding> {
    let toks: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let in_test = test_mod_mask(&toks);
    let mut findings = Vec::new();

    for i in 0..toks.len() {
        if in_test[i]
            || !toks[i].is_punct('.')
            || i + 2 >= toks.len()
            || !(toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
            || !toks[i + 2].is_punct('(')
        {
            continue;
        }
        // The receiver must be a call: `<name>(...)` directly before the
        // dot. Walk back over the matched parens to the callee name.
        let Some(open) = matching_open_paren(&toks, i) else { continue };
        if open == 0 || toks[open - 1].kind != TokKind::Ident {
            continue;
        }
        let callee = toks[open - 1].text.as_str();
        let path_call = open >= 2 && toks[open - 2].is_punct(':');
        if METHOD_IO.contains(&callee) || (path_call && PATH_IO.contains(&callee)) {
            findings.push(Finding {
                file: file.to_string(),
                line: toks[i + 1].line,
                rule: "io-unwrap",
                message: format!(
                    "`.{}(..)` on the io::Result of `{callee}(..)`; crash-safety code must \
                     propagate I/O errors (a torn write or injected fault here aborts instead \
                     of keeping the previous generation)",
                    toks[i + 1].text
                ),
            });
        }
    }
    findings
}

/// `mask[i]` is true when token `i` sits inside a `#[cfg(test)] mod`
/// body (attributes between the cfg and the `mod` keyword are allowed).
fn test_mod_mask(toks: &[&Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip this and any further attributes, then expect `mod`.
            let mut j = i;
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attr(toks, j);
            }
            if j < toks.len() && toks[j].is_ident("mod") {
                // `mod name {` — mark through the matching close brace.
                let mut k = j;
                while k < toks.len() && !toks[k].is_punct('{') {
                    if toks[k].is_punct(';') {
                        break; // `mod name;` — out-of-line, nothing here
                    }
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct('{') {
                    let mut depth = 0i32;
                    let mut end = k;
                    while end < toks.len() {
                        match toks[end].ch {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    for slot in mask.iter_mut().take(end.min(toks.len() - 1) + 1).skip(i) {
                        *slot = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Whether tokens at `i` spell `#[cfg(test)]` exactly.
fn is_cfg_test_attr(toks: &[&Tok], i: usize) -> bool {
    i + 6 < toks.len()
        && toks[i].is_punct('#')
        && toks[i + 1].is_punct('[')
        && toks[i + 2].is_ident("cfg")
        && toks[i + 3].is_punct('(')
        && toks[i + 4].is_ident("test")
        && toks[i + 5].is_punct(')')
        && toks[i + 6].is_punct(']')
}

/// Skips a `#[...]` attribute starting at `i` (the `#`), returning the
/// index just past its closing `]`.
fn skip_attr(toks: &[&Tok], i: usize) -> usize {
    let mut j = i + 1;
    if j >= toks.len() || !toks[j].is_punct('[') {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].ch {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// For a `.` at `dot` whose receiver ends in `)`, the index of the
/// matching `(`. `None` when the receiver is not a call.
fn matching_open_paren(toks: &[&Tok], dot: usize) -> Option<usize> {
    if dot == 0 || !toks[dot - 1].is_punct(')') {
        return None;
    }
    let mut depth = 0i32;
    for j in (0..dot).rev() {
        match toks[j].ch {
            ')' => depth += 1,
            '(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn unwrap_on_method_io_is_flagged() {
        let src = "fn f() {\n    snapshot.save(&path).unwrap();\n    TrainCheckpoint::load(&path).expect(\"load\");\n}";
        let f = check("x.rs", &lex(src));
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].rule, "io-unwrap");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("`save(..)`"));
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn unwrap_on_path_io_is_flagged() {
        let src = "fn f() {\n    let bytes = std::fs::read(&path).unwrap();\n    std::fs::rename(&a, &b).expect(\"mv\");\n}";
        let f = check("x.rs", &lex(src));
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn bare_read_method_is_not_flagged() {
        // `read`/`write` as *method* names are lock guards and buffer
        // traits far more often than I/O: only `::read(...)` flags.
        let src = "fn f(l: &RwLock<u32>) -> u32 {\n    *l.read().unwrap()\n}\nfn g(l: &RwLock<u32>) {\n    *l.write().unwrap() += 1;\n}";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn non_io_unwraps_are_not_flagged() {
        let src = "fn f(v: &[u32]) -> u32 {\n    *v.last().unwrap()\n}\nfn g(o: Option<u32>) -> u32 {\n    o.expect(\"present\")\n}";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f(l: &RwLock<u32>) -> u32 {\n    *l.read().unwrap_or_else(|e| e.into_inner())\n}";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn f() {\n    snapshot.save(&p).unwrap();\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        snapshot.save(&p).unwrap();\n        std::fs::read(&p).unwrap();\n    }\n}";
        let f = check("x.rs", &lex(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn attributes_between_cfg_and_mod_are_tolerated() {
        let src = "#[cfg(test)]\n#[allow(clippy::unwrap_used)]\nmod tests {\n    fn t() { std::fs::write(&p, b\"x\").unwrap(); }\n}";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn code_after_a_test_mod_is_still_checked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::read(&p).unwrap(); }\n}\nfn f() {\n    checkpoint.save_with(&p, &mut plan).unwrap();\n}";
        let f = check("x.rs", &lex(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn nested_call_arguments_do_not_confuse_the_matcher() {
        let src = "fn f() {\n    fio::atomic_write(&path, &to_bytes(x), plan).unwrap();\n}";
        let f = check("x.rs", &lex(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("atomic_write"));
    }
}
