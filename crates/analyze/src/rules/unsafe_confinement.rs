//! Rule family 1: `unsafe` confinement.
//!
//! The workspace denies `unsafe_code` everywhere except two audited
//! files (ROADMAP standing constraint): the worker-pool claim/quiesce
//! protocol and the counting global allocator. This rule makes the
//! confinement mechanical:
//!
//! * `unsafe-confinement` — an `unsafe` token in any file outside the
//!   allow-list is a finding, even where `#![allow(unsafe_code)]` might
//!   have snuck in;
//! * `unsafe-safety-comment` — inside the allowed files, every `unsafe`
//!   token (block, fn, impl, or fn-pointer type) must be preceded by a
//!   comment containing `SAFETY:` ending no more than
//!   [`SAFETY_WINDOW`] lines above it, so each unsafe site carries its
//!   argument next to the code.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Finding;

/// How many lines above an `unsafe` token a `SAFETY:` comment may end
/// and still count as covering it. Generous enough for an attribute or
/// a signature line between comment and keyword, tight enough that a
/// file-header comment cannot blanket a whole module.
pub const SAFETY_WINDOW: u32 = 3;

/// Runs the unsafe-confinement family over one file.
pub fn check(file: &str, tokens: &[Tok], cfg: &Config) -> Vec<Finding> {
    let allowed = cfg.allowed_unsafe.iter().any(|p| p == file);
    let mut findings = Vec::new();
    for tok in tokens {
        if !tok.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            findings.push(Finding {
                file: file.to_string(),
                line: tok.line,
                rule: "unsafe-confinement",
                message: format!(
                    "`unsafe` is confined to {}; move the code there or redesign without it",
                    cfg.allowed_unsafe.join(", ")
                ),
            });
        } else if !has_safety_comment(tokens, tok.line) {
            findings.push(Finding {
                file: file.to_string(),
                line: tok.line,
                rule: "unsafe-safety-comment",
                message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            });
        }
    }
    findings
}

/// Whether any comment containing `SAFETY:` ends within
/// [`SAFETY_WINDOW`] lines above `line` (or on it, for trailing
/// comments).
fn has_safety_comment(tokens: &[Tok], line: u32) -> bool {
    let lo = line.saturating_sub(SAFETY_WINDOW);
    tokens.iter().any(|t| {
        t.is_comment() && t.text.contains("SAFETY:") && t.end_line >= lo && t.end_line <= line
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg() -> Config {
        Config { allowed_unsafe: vec!["ok.rs".to_string()], ..Config::default() }
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let toks = lex("fn f() { unsafe { danger() } }");
        let f = check("other.rs", &toks, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-confinement");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allowed_file_needs_safety_comment() {
        let toks = lex("fn f() {\n    unsafe { danger() }\n}");
        let f = check("ok.rs", &toks, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-safety-comment");
    }

    #[test]
    fn safety_comment_satisfies_rule() {
        let toks = lex("fn f() {\n    // SAFETY: the pointer is valid for the scope.\n    unsafe { danger() }\n}");
        assert!(check("ok.rs", &toks, &cfg()).is_empty());
    }

    #[test]
    fn safety_comment_too_far_above_does_not_count() {
        let src = "// SAFETY: stale header\n\n\n\n\n\nfn f() { unsafe { x() } }";
        let toks = lex(src);
        let f = check("ok.rs", &toks, &cfg());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-safety-comment");
    }

    #[test]
    fn unsafe_in_strings_and_comments_ignored() {
        let toks = lex("// this fn is not unsafe\nfn f() { let s = \"unsafe\"; }");
        assert!(check("other.rs", &toks, &cfg()).is_empty());
    }

    #[test]
    fn block_safety_comment_end_line_counts() {
        let src = "/* SAFETY: long argument\nspanning lines */\nunsafe fn g() {}";
        let toks = lex(src);
        assert!(check("ok.rs", &toks, &cfg()).is_empty());
    }
}
