//! A small handwritten Rust lexer, just deep enough for invariant linting.
//!
//! The rule families in this crate reason about *identifier tokens* and
//! *comments*: `unsafe` keywords, banned API names, `// SAFETY:` and
//! `// gnmr-analyze:` pragma comments, function names and brace
//! structure. Everything that could hide a false positive — string
//! contents, char literals, nested block comments — must therefore be
//! lexed correctly and kept out of the identifier stream. The lexer
//! handles:
//!
//! * line comments (`//`, `///`, `//!`) — emitted as [`TokKind::LineComment`]
//!   tokens so pragma and `SAFETY:` scanning can see them;
//! * block comments (`/* .. */`) **with nesting**, emitted as
//!   [`TokKind::BlockComment`] with both start and end line recorded;
//! * string literals with escapes (`"a\"b"`), byte strings (`b".."`),
//!   and raw strings with any hash depth (`r".."`, `r#".."#`,
//!   `br##".."##`) — all collapsed to a single [`TokKind::Str`] token;
//! * char literals vs. lifetimes (`'a'` is a literal, `'a` in
//!   `&'a str` is not);
//! * identifiers/keywords, loosely-lexed numbers, and one-character
//!   punctuation.
//!
//! It does **not** build an AST; the rules pattern-match short token
//! sequences, which is exactly as much syntax as the invariants need.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `fn`, ...).
    Ident,
    /// One character of punctuation (`.`, `!`, `{`, ...).
    Punct,
    /// `// ...` comment; `text` holds everything after the `//`.
    LineComment,
    /// `/* ... */` comment (nesting folded in); `text` holds the body.
    BlockComment,
    /// Any string/char/byte/raw-string literal; `text` is empty.
    Str,
    /// A numeric literal; `text` is empty.
    Num,
}

/// One token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Identifier or comment text (empty for literals).
    pub text: String,
    /// Punctuation character (`'\0'` for other kinds).
    pub ch: char,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (differs for block comments and
    /// multi-line strings).
    pub end_line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.ch == c
    }

    /// Whether this token is a (line or block) comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Unterminated constructs (possible
/// only on malformed input) terminate at end of file rather than
/// panicking: a linter must degrade gracefully on code `rustc` would
/// reject anyway.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                c => {
                    self.push(TokKind::Punct, String::new(), c, self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, ch: char, start_line: u32) {
        self.out.push(Tok { kind, text, ch, line: start_line, end_line: self.line });
    }

    fn line_comment(&mut self) {
        let start = self.line;
        self.pos += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.push(TokKind::LineComment, text, '\0', start);
    }

    fn block_comment(&mut self) {
        let start = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                text.push(c);
                self.pos += 1;
            }
        }
        self.push(TokKind::BlockComment, text, '\0', start);
    }

    /// A `"..."` string with backslash escapes.
    fn string(&mut self) {
        let start = self.line;
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Str, String::new(), '\0', start);
    }

    /// A `r##"..."##`-style raw string whose `r` prefix has already been
    /// consumed; `self.pos` sits on the first `#` or the opening quote.
    fn raw_string(&mut self, start: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(self.peek(0), Some('"'));
        self.pos += 1; // opening quote
        'scan: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
            } else if c == '"' {
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.pos += 1;
                        continue 'scan;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.push(TokKind::Str, String::new(), '\0', start);
    }

    /// Distinguishes `'a'` (char literal) from `'a` (lifetime): after
    /// the quote, an identifier character *not* followed by a closing
    /// quote is a lifetime. Escapes (`'\n'`, `'\''`) are literals.
    fn char_or_lifetime(&mut self) {
        let start = self.line;
        match self.peek(1) {
            Some('\\') => {
                // Escaped char literal: quote, backslash, escape body, quote.
                self.pos += 3; // consume `'\x`
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Str, String::new(), '\0', start);
            }
            Some(c) if is_ident_continue(c) && self.peek(2) != Some('\'') => {
                // Lifetime: consume the quote and the identifier, emit
                // nothing — rules never care about lifetimes.
                self.pos += 1;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
            }
            Some(_) => {
                // Plain char literal `'x'` (possibly a newline char).
                if self.peek(1) == Some('\n') {
                    self.line += 1;
                }
                self.pos += 3;
                self.push(TokKind::Str, String::new(), '\0', start);
            }
            None => self.pos += 1,
        }
    }

    fn number(&mut self) {
        let start = self.line;
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        // A fraction part only if the dot is followed by a digit, so
        // `0..n` lexes as Num, Punct('.'), Punct('.'), Ident.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                self.pos += 1;
            }
        }
        self.push(TokKind::Num, String::new(), '\0', start);
    }

    fn ident(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        // `r"..."`, `b"..."`, `br#"..."#`, `rb` is not valid Rust but
        // accepted here for robustness: a string-literal prefix turns
        // the "identifier" into a literal.
        let is_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
        if is_prefix && self.peek(0) == Some('"') {
            if text.starts_with('b') && !text.contains('r') {
                self.string();
                return;
            }
            self.raw_string(start);
            return;
        }
        if is_prefix && text.contains('r') && self.peek(0) == Some('#') {
            // Distinguish `r#"raw"#` / `r#ident` (raw identifier).
            let mut ahead = 0;
            while self.peek(ahead) == Some('#') {
                ahead += 1;
            }
            if self.peek(ahead) == Some('"') {
                self.raw_string(start);
                return;
            }
            // Raw identifier `r#type`: consume `#` and the word.
            self.pos += 1;
            let mut raw = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                raw.push(c);
                self.pos += 1;
            }
            self.push(TokKind::Ident, raw, '\0', start);
            return;
        }
        self.push(TokKind::Ident, text, '\0', start);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let x = "unsafe thread_rng"; call(x);"#;
        assert_eq!(idents(src), vec!["let", "x", "call", "x"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"unsafe\""; next();"#;
        assert_eq!(idents(src), vec!["let", "s", "next"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"contains "unsafe" quoted"#; after();"##;
        assert_eq!(idents(src), vec!["let", "s", "after"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner unsafe */ still comment */ b";
        let toks = lex(src);
        assert_eq!(idents(src), vec!["a", "b"]);
        let comment = toks.iter().find(|t| t.kind == TokKind::BlockComment).unwrap();
        assert!(comment.text.contains("inner unsafe"));
    }

    #[test]
    fn block_comment_line_spans() {
        let src = "/* one\ntwo\nthree */ fn x() {}";
        let toks = lex(src);
        let comment = &toks[0];
        assert_eq!((comment.line, comment.end_line), (1, 3));
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive lexer treats `'a` as an unterminated char literal and
        // swallows the rest of the file.
        let src = "fn f<'a>(x: &'a str) -> &'a str { unsafe { x } }";
        let ids = idents(src);
        assert!(ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_including_escapes() {
        let src = r"let a = 'x'; let b = '\''; let c = '\\'; let d = '\n'; end();";
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "let", "c", "let", "d", "end"]);
    }

    #[test]
    fn quote_char_literal_is_not_a_lifetime() {
        // `'a'` has an ident char after the quote but closes immediately.
        let src = "m.insert('a', 1); m.insert('b', 2);";
        let ids = idents(src);
        assert_eq!(ids, vec!["m", "insert", "m", "insert"]);
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let src = r###"let a = b"unsafe"; let b2 = br#"thread_rng"#; tail();"###;
        assert_eq!(idents(src), vec!["let", "a", "let", "b2", "tail"]);
    }

    #[test]
    fn raw_identifiers() {
        let src = "let r#type = 1; use_it(r#type);";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "type", "use_it", "type"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "for i in 0..10 { x(1.5, 0xff_u32, 1e-3); }";
        let ids = idents(src);
        assert_eq!(ids, vec!["for", "i", "in", "x"]);
        let dots = lex(src).iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "both range dots survive");
    }

    #[test]
    fn line_comments_capture_text_and_lines() {
        let src = "// SAFETY: fine\nunsafe { x() }";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("SAFETY:"));
        assert_eq!(toks[0].line, 1);
        let u = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(u.line, 2);
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let src = "/// docs mention unsafe\n//! inner docs\nfn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }
}
