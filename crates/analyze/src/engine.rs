//! File walking, rule dispatch, and pragma application.
//!
//! The engine walks every `.rs` file under the workspace root (skipping
//! `target/`, `third_party/` — vendored external code is not ours to
//! lint — and hidden directories), lexes each once, runs the per-file
//! rule families, then the cross-file kernel-coverage rule, and finally
//! applies pragma suppressions.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer::{lex, Tok};
use crate::report::{extract_pragmas, Finding, Report, Suppression};
use crate::rules::{
    determinism, hot_alloc, io_unwrap, kernel_coverage, sync_protocol, unsafe_confinement,
};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "third_party"];

/// Analyzes every workspace `.rs` file under `root` with the given
/// configuration. Returns the report or an IO/parse error message.
pub fn analyze_tree(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    let mut tokens_by_file: BTreeMap<String, Vec<Tok>> = BTreeMap::new();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        tokens_by_file.insert(rel.clone(), lex(&text));
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressions: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();

    for (rel, toks) in &tokens_by_file {
        let (sup, pragma_findings) = extract_pragmas(rel, toks);
        suppressions.insert(rel.clone(), sup);
        findings.extend(pragma_findings);

        findings.extend(unsafe_confinement::check(rel, toks, cfg));
        findings.extend(sync_protocol::check(rel, toks, cfg));
        findings.extend(determinism::check_rng(rel, toks));
        if cfg.numeric_prefixes.iter().any(|p| rel.starts_with(p.as_str())) {
            findings.extend(determinism::check_map_iter(rel, toks));
        }
        if cfg.io_unwrap_prefixes.iter().any(|p| rel.starts_with(p.as_str())) {
            findings.extend(io_unwrap::check(rel, toks));
        }
        let entries: Vec<_> =
            cfg.hot_manifest.iter().filter(|e| e.file == *rel).collect();
        if !entries.is_empty() {
            findings.extend(hot_alloc::check(rel, toks, &entries));
        }
    }

    if let (Some(kernels), Some(equiv)) = (&cfg.kernels_file, &cfg.equivalence_file) {
        match (tokens_by_file.get(kernels), tokens_by_file.get(equiv)) {
            (Some(ktoks), Some(etoks)) => {
                findings.extend(kernel_coverage::check(kernels, ktoks, equiv, etoks));
            }
            (Some(_), None) => {
                findings.push(Finding {
                    file: kernels.clone(),
                    line: 1,
                    rule: "kernel-coverage",
                    message: format!(
                        "equivalence suite {equiv} is missing; every kernel is uncovered"
                    ),
                });
            }
            // No kernels file in this tree (fixture roots): vacuously ok.
            (None, _) => {}
        }
    }

    // Manifest entries pointing at files that do not exist would make
    // the hot-alloc rule silently vacuous — surface them.
    for entry in &cfg.hot_manifest {
        if !tokens_by_file.contains_key(&entry.file) {
            findings.push(Finding {
                file: Config::MANIFEST_PATH.to_string(),
                line: 1,
                rule: "hot-alloc",
                message: format!("manifest entry `{entry}` names a file not in the tree"),
            });
        }
    }

    let empty = Vec::new();
    let (kept, suppressed): (Vec<_>, Vec<_>) = findings.into_iter().partition(|f| {
        f.rule == "pragma-syntax"
            || !suppressions
                .get(&f.file)
                .unwrap_or(&empty)
                .iter()
                .any(|s| s.covers(f.rule, f.line))
    });

    let mut kept = kept;
    kept.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    kept.dedup();
    Ok(Report { findings: kept, suppressed: suppressed.len(), files_scanned: files.len() })
}

/// Recursively collects workspace-relative `.rs` paths (forward
/// slashes, deterministic order via the caller's sort).
fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel_path(root, &path));
        }
    }
    Ok(())
}

/// `path` relative to `root`, normalized to forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the binary finds the tree to lint when
/// invoked from any subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
