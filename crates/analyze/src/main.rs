//! CLI entry point. See the crate docs ([`gnmr_analyze`]) for what the
//! rules enforce.
//!
//! ```text
//! gnmr-analyze [--ci] [--json] [--root <dir>] [--list-rules]
//! ```
//!
//! * default: print findings and a summary, exit 0 (informational);
//! * `--ci`: exit 1 on any unsuppressed finding (the CI gate);
//! * `--json`: emit the report as one JSON object on stdout instead of
//!   the line-oriented text (exit-code semantics unchanged, composable
//!   with `--ci`);
//! * `--root`: lint a different tree (defaults to the enclosing cargo
//!   workspace);
//! * `--list-rules`: print the rule identifiers pragmas may reference.

use std::path::PathBuf;
use std::process::ExitCode;

use gnmr_analyze::{analyze_tree, find_workspace_root, Config, RULE_IDS};

fn main() -> ExitCode {
    let mut ci = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => ci = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root requires a directory"),
            },
            "--list-rules" => {
                for rule in RULE_IDS {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gnmr-analyze: cannot determine current dir: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "gnmr-analyze: no enclosing cargo workspace found; pass --root <dir>"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut cfg = Config::workspace();
    if let Err(e) = cfg.load_manifest(&root) {
        eprintln!("gnmr-analyze: {e}");
        return ExitCode::FAILURE;
    }

    match analyze_tree(&root, &cfg) {
        Ok(report) => {
            print!("{}", if json { report.render_json() } else { report.render() });
            if ci && !report.is_clean() {
                eprintln!("gnmr-analyze: failing --ci run (unsuppressed findings above)");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("gnmr-analyze: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("gnmr-analyze: {err}");
    eprintln!("usage: gnmr-analyze [--ci] [--json] [--root <dir>] [--list-rules]");
    ExitCode::FAILURE
}
