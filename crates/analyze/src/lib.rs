//! `gnmr-analyze` — a workspace invariant linter.
//!
//! The repository rests on contracts that, before this crate, held only
//! by convention and reviewer memory:
//!
//! 1. **Unsafe confinement.** `unsafe` lives in exactly two audited
//!    files, each site argued by a `// SAFETY:` comment.
//! 2. **Determinism.** "Same seed, same bytes" at every thread count:
//!    no ambient entropy anywhere, no HashMap/HashSet iteration in the
//!    numeric crates.
//! 3. **Zero-allocation hot path.** Functions in the checked-in
//!    manifest (tape backward, fused optimizers, in-place kernels)
//!    contain no allocating constructs — the static complement to the
//!    runtime counting-allocator gate.
//! 4. **Kernel equivalence coverage.** Every public kernel entry point
//!    is referenced from the bitwise-equivalence suite.
//!
//! The binary walks every workspace `.rs` file with a small handwritten
//! lexer (comments, nested block comments, string/char/raw-string
//! literals handled correctly), prints findings as
//! `file:line:rule-id: message`, honors
//! `// gnmr-analyze: allow(rule-id) -- reason` pragmas (justification
//! mandatory), and with `--ci` exits nonzero on any unsuppressed
//! finding. It has no dependencies — not even on the rest of the
//! workspace — so it builds first and fast in CI.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{parse_manifest, Config, ManifestEntry, RULE_IDS};
pub use engine::{analyze_tree, find_workspace_root};
pub use report::{Finding, Report};
