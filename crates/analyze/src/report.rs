//! Findings, pragma suppression, and output formatting.
//!
//! A finding prints as `file:line:rule-id: message` (clickable in most
//! editors and CI log viewers). An inline pragma comment
//!
//! ```text
//! // gnmr-analyze: allow(rule-id) -- justification
//! ```
//!
//! suppresses findings of that rule on the pragma's own line or the
//! line directly below it; the `-- justification` tail is mandatory, so
//! every suppression in the tree carries its reason next to the code it
//! excuses.

use std::fmt;

use crate::config::RULE_IDS;
use crate::lexer::{Tok, TokKind};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A parsed `allow` pragma.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// Line of the pragma comment.
    pub line: u32,
}

impl Suppression {
    /// Whether this pragma covers a finding of `rule` at `line`: the
    /// pragma's own line (trailing form) or the next line (preceding
    /// form).
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

/// Scans a token stream for `gnmr-analyze:` pragma comments. Returns
/// the valid suppressions plus findings for malformed pragmas (missing
/// justification, unknown rule id, unparsable syntax) — a pragma that
/// does not say *why* is itself a violation.
pub fn extract_pragmas(file: &str, tokens: &[Tok]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut suppressions = Vec::new();
    let mut findings = Vec::new();
    for tok in tokens {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let Some(rest) = tok.text.trim_start().strip_prefix("gnmr-analyze:") else { continue };
        match parse_pragma(rest) {
            Ok(rule) => suppressions.push(Suppression { rule, line: tok.line }),
            Err(msg) => findings.push(Finding {
                file: file.to_string(),
                line: tok.line,
                rule: "pragma-syntax",
                message: msg,
            }),
        }
    }
    (suppressions, findings)
}

/// Parses the tail after `gnmr-analyze:`; expects
/// `allow(rule-id) -- nonempty reason`.
fn parse_pragma(rest: &str) -> Result<String, String> {
    let rest = rest.trim();
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Err(format!("expected `allow(rule-id) -- reason`, got {rest:?}"));
    };
    let Some((rule, tail)) = inner.split_once(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let rule = rule.trim();
    if !RULE_IDS.contains(&rule) {
        return Err(format!("unknown rule id {rule:?} (known: {})", RULE_IDS.join(", ")));
    }
    if rule == "pragma-syntax" {
        return Err("pragma-syntax findings cannot be suppressed".to_string());
    }
    let tail = tail.trim();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!("pragma for {rule:?} is missing its `-- justification`"));
    }
    Ok(rule.to_string())
}

/// The outcome of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// How many findings pragmas suppressed.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders findings (one per line) plus a trailing summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "gnmr-analyze: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Renders the report as a single JSON object (for `--json`):
    /// `{"findings": [{file, line, rule, message}, ...], "suppressed":
    /// N, "files_scanned": N, "clean": bool}`. Hand-rolled — the
    /// workspace takes no external dependencies — so the escaping
    /// covers exactly what findings can contain: text and numbers.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"suppressed\": {},\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.suppressed,
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finding_formats_as_file_line_rule() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 12,
            rule: "det-rng",
            message: "no".into(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:12:det-rng: no");
    }

    #[test]
    fn json_report_escapes_and_summarizes() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "hot-alloc",
                message: "allocation in `hot \"path\"`".into(),
            }],
            suppressed: 2,
            files_scanned: 9,
        };
        let json = report.render_json();
        assert!(json.contains("\"file\": \"crates/x/src/lib.rs\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"rule\": \"hot-alloc\""));
        assert!(json.contains(r#"allocation in `hot \"path\"`"#));
        assert!(json.contains("\"suppressed\": 2"));
        assert!(json.contains("\"files_scanned\": 9"));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn json_report_empty_findings_is_clean() {
        let report = Report { findings: vec![], suppressed: 0, files_scanned: 3 };
        let json = report.render_json();
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"clean\": true"));
    }

    #[test]
    fn pragma_roundtrip() {
        let toks = lex("// gnmr-analyze: allow(det-map-iter) -- order-insensitive sum\nlet x = 1;");
        let (sup, bad) = extract_pragmas("f.rs", &toks);
        assert!(bad.is_empty());
        assert_eq!(sup.len(), 1);
        assert!(sup[0].covers("det-map-iter", 1));
        assert!(sup[0].covers("det-map-iter", 2));
        assert!(!sup[0].covers("det-map-iter", 3));
        assert!(!sup[0].covers("det-rng", 2));
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let toks = lex("// gnmr-analyze: allow(det-rng)\n");
        let (sup, bad) = extract_pragmas("f.rs", &toks);
        assert!(sup.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "pragma-syntax");
        assert!(bad[0].message.contains("justification"));
    }

    #[test]
    fn pragma_with_unknown_rule_is_a_finding() {
        let toks = lex("// gnmr-analyze: allow(no-such-rule) -- because\n");
        let (sup, bad) = extract_pragmas("f.rs", &toks);
        assert!(sup.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn pragma_cannot_suppress_pragma_syntax() {
        let toks = lex("// gnmr-analyze: allow(pragma-syntax) -- nice try\n");
        let (sup, bad) = extract_pragmas("f.rs", &toks);
        assert!(sup.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn non_pragma_comments_ignored() {
        let toks = lex("// a normal comment about gnmr\n/* gnmr-analyze: allow(det-rng) -- block comments are not pragmas */\n");
        let (sup, bad) = extract_pragmas("f.rs", &toks);
        assert!(sup.is_empty());
        assert!(bad.is_empty());
    }
}
