//! End-to-end tests for the analyzer: each rule against a violating
//! fixture, a clean fixture, and a pragma-suppressed fixture, plus the
//! lexer edge cases that make the rules trustworthy and a tripwire run
//! over the live workspace.
//!
//! Fixture trees are materialized in a temp directory — embedding the
//! violating source as *string literals* here doubles as a lexer test:
//! the tripwire run below scans this very file, and banned constructs
//! inside literals must be invisible to it.

use std::fs;
use std::path::{Path, PathBuf};

use gnmr_analyze::{analyze_tree, Config, ManifestEntry, Report};

/// A throwaway fixture tree under the system temp dir; removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir()
            .join(format!("gnmr-analyze-fixture-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
        self
    }

    fn run(&self, cfg: &Config) -> Report {
        analyze_tree(&self.root, cfg).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// A minimal config: `src/par.rs` may hold unsafe, `numeric/` is a
/// numeric crate, no manifest or coverage pair unless a test adds them.
fn base_cfg() -> Config {
    Config {
        allowed_unsafe: vec!["src/par.rs".to_string()],
        numeric_prefixes: vec!["numeric/".to_string()],
        ..Config::default()
    }
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ----- rule 1: unsafe confinement -------------------------------------

#[test]
fn unsafe_outside_allowlist_is_flagged() {
    let fx = Fixture::new("unsafe-outside");
    fx.write("src/lib.rs", "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["unsafe-confinement"]);
    assert_eq!(report.findings[0].file, "src/lib.rs");
    assert_eq!(report.findings[0].line, 1);
}

#[test]
fn unsafe_in_allowed_file_needs_safety_comment() {
    let fx = Fixture::new("unsafe-safety");
    // Missing SAFETY comment: flagged even in the allowed file.
    fx.write("src/par.rs", "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["unsafe-safety-comment"]);

    // With the comment (within the 3-line window): clean.
    fx.write(
        "src/par.rs",
        "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
    );
    assert!(fx.run(&base_cfg()).is_clean());
}

// ----- rule 2: determinism --------------------------------------------

#[test]
fn ambient_entropy_is_flagged_everywhere() {
    let fx = Fixture::new("det-rng");
    // Even outside the numeric crates: entropy breaks reproducibility
    // wherever it seeps in.
    fx.write("tools/src/lib.rs", "pub fn f() -> u64 { rand::thread_rng().gen() }\n");
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["det-rng"]);
}

#[test]
fn map_iteration_is_flagged_only_in_numeric_crates() {
    let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, f32>) -> f32 {\n    m.values().sum()\n}\n";
    let fx = Fixture::new("det-map-iter");
    fx.write("numeric/src/lib.rs", src);
    fx.write("cli/src/lib.rs", src);
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["det-map-iter"]);
    assert_eq!(report.findings[0].file, "numeric/src/lib.rs");
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn btreemap_iteration_is_clean() {
    let fx = Fixture::new("det-btree");
    fx.write(
        "numeric/src/lib.rs",
        "use std::collections::BTreeMap;\npub fn f(m: &BTreeMap<u32, f32>) -> f32 {\n    m.values().sum()\n}\n",
    );
    assert!(fx.run(&base_cfg()).is_clean());
}

// ----- rule 3: hot-path allocation ------------------------------------

fn hot_cfg() -> Config {
    let mut cfg = base_cfg();
    cfg.hot_manifest =
        vec![ManifestEntry { file: "numeric/src/hot.rs".to_string(), pattern: "*_acc".to_string() }];
    cfg
}

#[test]
fn allocation_in_manifest_fn_is_flagged() {
    let fx = Fixture::new("hot-alloc");
    fx.write(
        "numeric/src/hot.rs",
        "pub fn add_acc(dst: &mut Vec<f32>, src: &[f32]) {\n    let tmp = src.to_vec();\n    for (d, s) in dst.iter_mut().zip(tmp) { *d += s; }\n}\n",
    );
    let report = fx.run(&hot_cfg());
    assert_eq!(rules_of(&report), vec!["hot-alloc"]);
    assert_eq!(report.findings[0].line, 2);
}

#[test]
fn allocation_outside_manifest_fns_is_fine() {
    let fx = Fixture::new("hot-clean");
    // `add_acc` is in-place (clean); `add_with` allocates but is not
    // named by the manifest.
    fx.write(
        "numeric/src/hot.rs",
        "pub fn add_acc(dst: &mut [f32], src: &[f32]) {\n    for (d, s) in dst.iter_mut().zip(src) { *d += s; }\n}\npub fn add_with(src: &[f32]) -> Vec<f32> {\n    src.to_vec()\n}\n",
    );
    assert!(fx.run(&hot_cfg()).is_clean());
}

#[test]
fn manifest_entry_naming_missing_file_is_flagged() {
    let fx = Fixture::new("hot-missing");
    fx.write("numeric/src/lib.rs", "pub fn f() {}\n");
    let report = fx.run(&hot_cfg());
    assert_eq!(rules_of(&report), vec!["hot-alloc"]);
    assert!(report.findings[0].message.contains("names a file not in the tree"));
}

// ----- rule 4: kernel coverage ----------------------------------------

fn coverage_cfg() -> Config {
    let mut cfg = base_cfg();
    cfg.kernels_file = Some("numeric/src/kernels.rs".to_string());
    cfg.equivalence_file = Some("numeric/tests/equiv.rs".to_string());
    cfg
}

#[test]
fn uncovered_kernel_is_flagged() {
    let fx = Fixture::new("coverage");
    fx.write("numeric/src/kernels.rs", "pub fn covered() {}\npub fn forgotten() {}\n");
    fx.write("numeric/tests/equiv.rs", "#[test]\nfn t() { covered(); }\n");
    let report = fx.run(&coverage_cfg());
    assert_eq!(rules_of(&report), vec!["kernel-coverage"]);
    assert!(report.findings[0].message.contains("forgotten"));
    assert_eq!(report.findings[0].line, 2);
}

#[test]
fn missing_equivalence_suite_is_flagged() {
    let fx = Fixture::new("coverage-noequiv");
    fx.write("numeric/src/kernels.rs", "pub fn lonely() {}\n");
    let report = fx.run(&coverage_cfg());
    assert_eq!(rules_of(&report), vec!["kernel-coverage"]);
    assert!(report.findings[0].message.contains("missing"));
}

#[test]
fn fully_covered_kernels_are_clean() {
    let fx = Fixture::new("coverage-clean");
    fx.write("numeric/src/kernels.rs", "pub fn a() {}\npub fn b() {}\n");
    fx.write("numeric/tests/equiv.rs", "fn t() { a(); b(); }\n");
    assert!(fx.run(&coverage_cfg()).is_clean());
}

// ----- rule 5: sync protocol ------------------------------------------

fn sync_cfg() -> Config {
    let mut cfg = base_cfg();
    cfg.facade_files = vec!["src/par.rs".to_string()];
    cfg.ordering_comment_files = vec!["src/par.rs".to_string()];
    cfg
}

#[test]
fn std_sync_in_facade_file_is_flagged() {
    let fx = Fixture::new("sync-facade");
    fx.write(
        "src/par.rs",
        "use std::sync::Mutex;\npub fn f() { std::thread::yield_now(); }\n",
    );
    fx.write("src/lib.rs", "use std::sync::Mutex;\npub type M = Mutex<u32>;\n");
    let report = fx.run(&sync_cfg());
    // Both sites in par.rs flagged; lib.rs (not facade-bound) is free.
    assert_eq!(rules_of(&report), vec!["sync-facade", "sync-facade"]);
    assert!(report.findings.iter().all(|f| f.file == "src/par.rs"));
}

#[test]
fn facade_reexports_and_crate_sync_are_clean() {
    let fx = Fixture::new("sync-facade-clean");
    fx.write(
        "src/par.rs",
        "use crate::sync::{Arc, Condvar, Mutex};\npub fn f() { crate::sync::spawn_named(\"w\", || {}); }\n",
    );
    assert!(fx.run(&sync_cfg()).is_clean());
}

#[test]
fn ordering_use_without_comment_is_flagged() {
    let fx = Fixture::new("ordering-comment");
    fx.write(
        "src/par.rs",
        "use crate::sync::atomic::{AtomicUsize, Ordering};\npub fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Acquire)\n}\n",
    );
    let report = fx.run(&sync_cfg());
    assert_eq!(rules_of(&report), vec!["atomic-ordering-comment"]);
    assert_eq!(report.findings[0].line, 3);

    // With the justifying comment: clean. (The import on line 1 is a
    // bare `Ordering` path, never flagged.)
    fx.write(
        "src/par.rs",
        "use crate::sync::atomic::{AtomicUsize, Ordering};\npub fn f(a: &AtomicUsize) -> usize {\n    // ORDERING: Acquire pairs with the Release store in g.\n    a.load(Ordering::Acquire)\n}\n",
    );
    assert!(fx.run(&sync_cfg()).is_clean());
}

#[test]
fn sync_protocol_findings_are_pragma_suppressible() {
    let fx = Fixture::new("sync-pragma");
    fx.write(
        "src/par.rs",
        "// gnmr-analyze: allow(sync-facade) -- bootstrap before the facade exists\nuse std::sync::Mutex;\n",
    );
    let report = fx.run(&sync_cfg());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ----- rule 6: io-unwrap ----------------------------------------------

fn io_cfg() -> Config {
    let mut cfg = base_cfg();
    cfg.io_unwrap_prefixes = vec!["ckpt/src/".to_string()];
    cfg
}

#[test]
fn io_unwrap_in_crash_safety_crate_is_flagged() {
    let fx = Fixture::new("io-unwrap");
    let src = "pub fn persist(s: &Snapshot, p: &Path) {\n    s.save(p).unwrap();\n    let bytes = std::fs::read(p).expect(\"read back\");\n    use_it(bytes);\n}\n";
    fx.write("ckpt/src/lib.rs", src);
    // The same source outside the configured prefixes is not the
    // rule's business.
    fx.write("tools/src/lib.rs", src);
    let report = fx.run(&io_cfg());
    assert_eq!(rules_of(&report), vec!["io-unwrap", "io-unwrap"]);
    assert!(report.findings.iter().all(|f| f.file == "ckpt/src/lib.rs"));
    assert_eq!(report.findings[0].line, 2);
    assert_eq!(report.findings[1].line, 3);
}

#[test]
fn io_unwrap_ignores_tests_locks_and_options() {
    let fx = Fixture::new("io-unwrap-clean");
    fx.write(
        "ckpt/src/lib.rs",
        concat!(
            "pub fn current(h: &RwLock<State>) -> State {\n",
            // Lock-guard `.read()`/`.write()` are not I/O.
            "    h.read().unwrap().clone()\n",
            "}\n",
            "pub fn first(v: &[u32]) -> u32 {\n",
            "    *v.first().expect(\"non-empty\")\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn roundtrip() {\n",
            "        let bytes = std::fs::read(\"fixture.bin\").unwrap();\n",
            "        Snapshot::load(\"fixture.bin\").expect(\"load\");\n",
            "        drop(bytes);\n",
            "    }\n",
            "}\n",
        ),
    );
    let report = fx.run(&io_cfg());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn io_unwrap_is_pragma_suppressible() {
    let fx = Fixture::new("io-unwrap-pragma");
    fx.write(
        "ckpt/src/lib.rs",
        "pub fn f(p: &Path) {\n    // gnmr-analyze: allow(io-unwrap) -- bootstrap path, file baked into the image\n    let b = std::fs::read(p).unwrap();\n    use_it(b);\n}\n",
    );
    let report = fx.run(&io_cfg());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ----- JSON output ----------------------------------------------------

#[test]
fn json_render_reports_findings_machine_readably() {
    let fx = Fixture::new("json");
    fx.write("src/par.rs", "use std::sync::Mutex;\n");
    let report = fx.run(&sync_cfg());
    let json = report.render_json();
    assert!(json.contains("\"rule\": \"sync-facade\""));
    assert!(json.contains("\"file\": \"src/par.rs\""));
    assert!(json.contains("\"line\": 1"));
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"message\": \"direct `std::sync` use"));
    let clean = Fixture::new("json-clean");
    clean.write("src/lib.rs", "pub fn ok() {}\n");
    let json = clean.run(&sync_cfg()).render_json();
    assert!(json.contains("\"findings\": []"));
    assert!(json.contains("\"clean\": true"));
}

// ----- pragmas ---------------------------------------------------------

#[test]
fn pragma_suppresses_same_and_next_line() {
    let fx = Fixture::new("pragma-ok");
    fx.write(
        "src/lib.rs",
        "// gnmr-analyze: allow(unsafe-confinement) -- audited FFI shim\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let report = fx.run(&base_cfg());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn pragma_does_not_reach_past_next_line() {
    let fx = Fixture::new("pragma-range");
    fx.write(
        "src/lib.rs",
        "// gnmr-analyze: allow(unsafe-confinement) -- too far away\n\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["unsafe-confinement"]);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn pragma_without_reason_is_a_finding() {
    let fx = Fixture::new("pragma-noreason");
    fx.write("src/lib.rs", "// gnmr-analyze: allow(det-rng)\npub fn f() {}\n");
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["pragma-syntax"]);
}

#[test]
fn pragma_with_unknown_rule_is_a_finding() {
    let fx = Fixture::new("pragma-unknown");
    fx.write("src/lib.rs", "// gnmr-analyze: allow(no-such-rule) -- why not\npub fn f() {}\n");
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["pragma-syntax"]);
}

#[test]
fn pragma_syntax_findings_cannot_be_suppressed() {
    let fx = Fixture::new("pragma-meta");
    // `allow(pragma-syntax)` is itself a pragma-syntax finding, and it
    // must not eat the malformed pragma on the next line either.
    fx.write(
        "src/lib.rs",
        "// gnmr-analyze: allow(pragma-syntax) -- nice try\n// gnmr-analyze: allow(det-rng)\npub fn f() {}\n",
    );
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["pragma-syntax", "pragma-syntax"]);
    assert_eq!(report.suppressed, 0);
}

// ----- lexer edge cases through the engine ----------------------------

#[test]
fn banned_constructs_inside_literals_and_comments_are_invisible() {
    let fx = Fixture::new("lexer-literals");
    fx.write(
        "numeric/src/lib.rs",
        concat!(
            "// this comment mentions unsafe and thread_rng and m.values()\n",
            "/* block comment: unsafe { thread_rng() } /* nested */ still comment */\n",
            "pub fn f() -> &'static str {\n",
            "    \"unsafe { thread_rng() }\"\n",
            "}\n",
            "pub fn raw() -> &'static str {\n",
            "    r#\"SystemTime::now() and from_entropy()\"#\n",
            "}\n",
        ),
    );
    let report = fx.run(&base_cfg());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn lifetimes_and_chars_do_not_confuse_string_tracking() {
    let fx = Fixture::new("lexer-lifetimes");
    // A lifetime `'a`, a char literal containing a quote-ish escape,
    // and a real violation after them: the violation must still be
    // seen (i.e. the lexer didn't swallow the rest of the file as an
    // unterminated char literal).
    fx.write(
        "numeric/src/lib.rs",
        "pub fn f<'a>(x: &'a str) -> char { '\\'' }\npub fn g() -> u64 { rand::thread_rng().gen() }\n",
    );
    let report = fx.run(&base_cfg());
    assert_eq!(rules_of(&report), vec!["det-rng"]);
    assert_eq!(report.findings[0].line, 2);
}

#[test]
fn skip_dirs_are_not_scanned() {
    let fx = Fixture::new("skip-dirs");
    fx.write("target/debug/gen.rs", "pub fn f() { rand::thread_rng(); }\n");
    fx.write("third_party/vendored/src/lib.rs", "pub fn g() { unsafe {} }\n");
    fx.write(".hidden/src/lib.rs", "pub fn h() { unsafe {} }\n");
    fx.write("src/lib.rs", "pub fn ok() {}\n");
    let report = fx.run(&base_cfg());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
}

// ----- the live workspace ---------------------------------------------

/// The tripwire: the real tree, under the real config, must be clean.
/// A change that introduces stray unsafe, ambient entropy, map-order
/// dependence, hot-path allocation, or an untested kernel fails this
/// test (and, independently, the `--ci` step in the workflow).
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut cfg = Config::workspace();
    cfg.load_manifest(&root).expect("checked-in hotpath.manifest must parse");
    let report = analyze_tree(&root, &cfg).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the workspace violates its own invariants:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "walk looks truncated: {} files", report.files_scanned);
}
