//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Provides the surface the GNMR workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `new_tree`, implemented for integer and float ranges and tuples,
//! * [`collection::vec`],
//! * [`test_runner::TestRunner`] and [`test_runner::ProptestConfig`].
//!
//! Unlike real proptest this subset does **not** shrink failing inputs;
//! a failure reports the case index and the assertion message. Sampling
//! is deterministic: every test function runs from a fixed-seed runner.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic sampling state shared by all strategies of one test.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        rng: SmallRng,
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { rng: SmallRng::seed_from_u64(0x853C_49E6_748F_EA9B), config }
        }

        /// A runner with a fixed seed and default config (the real
        /// proptest API for reproducible standalone sampling).
        pub fn deterministic() -> Self {
            Self::new(ProptestConfig::default())
        }

        pub fn config(&self) -> &ProptestConfig {
            &self.config
        }

        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }

        pub(crate) fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::deterministic()
        }
    }

    /// Why a strategy or test case failed.
    #[derive(Clone, Debug)]
    pub struct Reason(String);

    impl Reason {
        pub fn fail(msg: impl Into<String>) -> Self {
            Reason(msg.into())
        }
    }

    impl core::fmt::Display for Reason {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl<S: Into<String>> From<S> for Reason {
        fn from(s: S) -> Self {
            Reason(s.into())
        }
    }

    pub type TestCaseError = Reason;
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use crate::test_runner::{Reason, TestRunner};
    use core::ops::Range;

    /// A sampled value. This subset does not shrink, so the tree is just
    /// the value itself.
    pub trait ValueTree {
        type Value;

        fn current(&self) -> Self::Value;
    }

    /// The tree produced by every strategy here: one concrete sample.
    #[derive(Clone, Debug)]
    pub struct SampledTree<T: Clone>(pub(crate) T);

    impl<T: Clone> ValueTree for SampledTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Clone;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<Self::Value>, Reason>
        where
            Self: Sized,
        {
            Ok(SampledTree(self.generate(runner)))
        }

        fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, flat: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, flat }
        }
    }

    /// A strategy that always yields the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.map)(self.source.generate(runner))
        }
    }

    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        flat: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, runner: &mut TestRunner) -> T::Value {
            (self.flat)(self.source.generate(runner)).generate(runner)
        }
    }

    // Range sampling delegates to the vendored `rand` so the uniform
    // integer/float logic lives in exactly one place.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    rand::Rng::gen_range(runner.rng(), self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use core::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let n = self.size.lo + (runner.next_u64() as usize) % span.max(1);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l
        );
    }};
}

/// Declares property tests. Each argument is drawn fresh from its
/// strategy for every case; a failing `prop_assert!` aborts that case
/// with a message (no shrinking in this subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::new(__config.clone());
            for __case in 0..__config.cases {
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __runner);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("property failed at case {}/{}: {}", __case + 1, __config.cases, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), f in -1.0f32..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn maps_and_vecs(v in crate::collection::vec((0u8..4).prop_map(|x| x * 2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in v {
                prop_assert!(x % 2 == 0, "odd value {}", x);
            }
        }

        #[test]
        fn flat_map_respects_inner(len in 1usize..5, v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..100, n))) {
            prop_assert!(len >= 1);
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn deterministic_runner_reproduces() {
        let strat = crate::collection::vec(0u64..1000, 3..7);
        let mut r1 = TestRunner::deterministic();
        let mut r2 = TestRunner::deterministic();
        let a = crate::strategy::Strategy::new_tree(&strat, &mut r1).unwrap().current();
        let b = crate::strategy::Strategy::new_tree(&strat, &mut r2).unwrap().current();
        assert_eq!(a, b);
    }
}
