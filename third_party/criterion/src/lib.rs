//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the surface `gnmr-bench` uses: the [`Criterion`] builder,
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical
//! analysis it reports a simple mean wall-clock per iteration, which is
//! enough for the workspace's cost-ablation benches to run and print
//! comparable numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into().0, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &label, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: run batches of one iteration until the warm-up budget is
    // spent (at least once, so one-shot effects are off the clock).
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        if warm_start.elapsed() >= config.warm_up_time {
            break;
        }
    }

    // Measurement: repeat sample batches until the time budget is spent.
    let mut total = Duration::ZERO;
    let mut iters: u64 = 0;
    let measure_start = Instant::now();
    loop {
        let mut b = Bencher { iters: config.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
        if measure_start.elapsed() >= config.measurement_time {
            break;
        }
    }

    let per_iter = total.as_nanos() / u128::from(iters.max(1));
    println!("bench: {label:<48} {per_iter:>12} ns/iter ({iters} iters)");
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                black_box(x * 2)
            })
        });
        group.finish();
        assert!(calls >= 3);
    }
}
