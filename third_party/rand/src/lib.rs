//! Offline, API-compatible subset of the `rand` crate (0.8-style surface).
//!
//! The workspace build environment has no crates.io access, so this
//! vendored crate provides exactly the slice of `rand` the GNMR
//! reproduction uses: the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and
//! [`seq::SliceRandom`].
//!
//! Everything is deterministic given a seed — the workspace contract is
//! "same seed, same bytes" — and implemented on a SplitMix64 core, which
//! is more than adequate statistically for simulation and initialization
//! workloads at this scale.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The raw source of randomness: 64 bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// A small, fast, deterministic generator (SplitMix64).
    ///
    /// SplitMix64 walks a Weyl sequence and scrambles each step with an
    /// avalanche finalizer; distinct seeds give decorrelated streams,
    /// which is the property the workspace's substream derivation tests.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

/// Types samplable uniformly over their whole domain via `Rng::gen`.
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// Ranges samplable via `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "cannot sample empty range {}..{}", self.start, self.end);
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range {}..={}", self.start(), self.end());
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard the half-open contract against rounding at the top.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`] (matching `rand 0.8`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::Rng;

    /// Slice helpers: in-place Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_in_half_open_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = r.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
