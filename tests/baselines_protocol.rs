//! Every baseline runs through the shared evaluation protocol and
//! produces sane, better-than-chance rankings on the tiny dataset.

use gnmr::prelude::*;

fn check(name: &str, model: &dyn Recommender, data: &Dataset, random_hr: f64) {
    let r = evaluate(model, &data.test, &[1, 10]);
    assert!(r.hr_at(10).is_finite(), "{name}: non-finite metric");
    assert!((0.0..=1.0).contains(&r.hr_at(10)), "{name}: HR out of range");
    assert!(r.hr_at(1) <= r.hr_at(10), "{name}: HR not monotone");
    assert!(
        r.hr_at(10) > random_hr - 0.02,
        "{name}: HR@10 {:.3} below random {:.3}",
        r.hr_at(10),
        random_hr
    );
    // Scores must be reproducible for the same input.
    let a = model.score(0, &[1, 2, 3]);
    let b = model.score(0, &[1, 2, 3]);
    assert_eq!(a, b, "{name}: unstable scores");
}

#[test]
fn all_baselines_pass_the_protocol() {
    let data = gnmr::data::presets::tiny_movielens(3);
    let random_hr = evaluate(&RandomRecommender::new(1), &data.test, &[1, 10]).hr_at(10);
    let cfg = BaselineConfig { epochs: 12, ..BaselineConfig::fast_test() };

    check("BiasMF", &BiasMf::fit(&data.graph, &cfg), &data, random_hr);
    check("DMF", &Dmf::fit(&data.graph, &cfg), &data, random_hr);
    check("NCF-G", &Ncf::fit(&data.graph, &cfg, NcfVariant::Gmf), &data, random_hr);
    check("NCF-M", &Ncf::fit(&data.graph, &cfg, NcfVariant::Mlp), &data, random_hr);
    check("NCF-N", &Ncf::fit(&data.graph, &cfg, NcfVariant::NeuMf), &data, random_hr);
    check("AutoRec", &AutoRec::fit(&data.graph, &cfg), &data, random_hr);
    check("CDAE", &Cdae::fit(&data.graph, &cfg), &data, random_hr);
    check("NADE", &Nade::fit(&data.graph, &cfg), &data, random_hr);
    check("CF-UIcA", &CfUica::fit(&data.graph, &cfg), &data, random_hr);
    check("NGCF", &Ngcf::fit(&data.graph, &cfg), &data, random_hr);
    check("NMTR", &Nmtr::fit(&data.graph, &cfg), &data, random_hr);
    check("DIPN", &Dipn::fit(&data.graph, &data.train_log, &cfg), &data, random_hr);
}

#[test]
fn multi_behavior_baselines_consume_all_channels() {
    // NMTR and DIPN must behave differently when auxiliary behaviors are
    // removed (they are the multi-behavior baselines).
    let data = gnmr::data::presets::tiny_taobao(3);
    let only = data.target_only();
    let cfg = BaselineConfig { epochs: 6, ..BaselineConfig::fast_test() };
    let full = Nmtr::fit(&data.graph, &cfg);
    let reduced = Nmtr::fit(&only.graph, &cfg);
    let a = full.score(0, &[1, 2, 3, 4, 5]);
    let b = reduced.score(0, &[1, 2, 3, 4, 5]);
    assert_ne!(a, b, "NMTR ignored auxiliary behaviors");
}
