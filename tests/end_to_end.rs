//! End-to-end pipeline: generate -> split -> train -> evaluate ->
//! recommend, with quality floors.

use gnmr::prelude::*;

#[test]
fn gnmr_end_to_end_beats_floors() {
    let data = gnmr::data::presets::tiny_movielens(3);
    let mut model = Gnmr::new(
        &data.graph,
        GnmrConfig { pretrain: false, seed: 5, ..GnmrConfig::default() },
    );
    let report = model.fit(&data.graph, &TrainConfig { epochs: 25, ..TrainConfig::fast_test() });
    assert!(report.final_loss() < report.epoch_losses[0], "training did not reduce loss");

    let ns = [1, 5, 10];
    let gnmr = evaluate_parallel(&model, &data.test, &ns, 2);
    let random = evaluate(&RandomRecommender::new(9), &data.test, &ns);
    assert!(
        gnmr.hr_at(10) > random.hr_at(10) + 0.15,
        "GNMR {:.3} vs random {:.3}",
        gnmr.hr_at(10),
        random.hr_at(10)
    );
    // Metric sanity.
    for &n in &ns {
        assert!((0.0..=1.0).contains(&gnmr.hr_at(n)));
        assert!(gnmr.ndcg_at(n) <= gnmr.hr_at(n) + 1e-9);
    }
    assert!(gnmr.hr_at(1) <= gnmr.hr_at(5));
    assert!(gnmr.hr_at(5) <= gnmr.hr_at(10));
}

#[test]
fn recommendations_exclude_seen_and_are_sorted() {
    let data = gnmr::data::presets::tiny_movielens(3);
    let mut model = Gnmr::new(
        &data.graph,
        GnmrConfig { pretrain: false, seed: 5, ..GnmrConfig::default() },
    );
    model.fit(&data.graph, &TrainConfig { epochs: 5, ..TrainConfig::fast_test() });

    for user in [0u32, 7, 23] {
        let seen = data.graph.user_items(user, data.graph.target()).to_vec();
        let recs = model.recommend(user, 10, &seen);
        assert_eq!(recs.len(), 10);
        for (item, score) in &recs {
            assert!(!seen.contains(item), "recommended a seen item");
            assert!(score.is_finite());
        }
        for pair in recs.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "not sorted by score");
        }
    }
}

#[test]
fn parallel_and_sequential_evaluation_agree() {
    let data = gnmr::data::presets::tiny_movielens(3);
    let mut model = Gnmr::new(
        &data.graph,
        GnmrConfig { pretrain: false, seed: 5, ..GnmrConfig::default() },
    );
    model.fit(&data.graph, &TrainConfig { epochs: 3, ..TrainConfig::fast_test() });
    let seq = evaluate(&model, &data.test, &[10]);
    let par = evaluate_parallel(&model, &data.test, &[10], 4);
    assert_eq!(seq, par);
}
