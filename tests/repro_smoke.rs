//! Smoke test of the reproduction pipeline: the three harness datasets
//! build, a short GNMR run works on each, and the table renderer produces
//! the paper's row/column structure.

use gnmr::eval::table::fmt_metric;
use gnmr::prelude::*;

#[test]
fn harness_datasets_have_paper_structure() {
    let ml = gnmr::data::presets::movielens_small(7);
    assert_eq!(
        ml.graph.behaviors(),
        &["dislike".to_string(), "neutral".to_string(), "like".to_string()]
    );
    assert_eq!(ml.graph.target_name(), "like");

    let yelp = gnmr::data::presets::yelp_small(7);
    assert_eq!(yelp.graph.n_behaviors(), 4);
    assert_eq!(yelp.graph.behaviors()[0], "tip");

    let taobao = gnmr::data::presets::taobao_small(7);
    assert_eq!(taobao.graph.target_name(), "buy");
    // Funnel sparsity: buy is the rarest behavior.
    let counts: Vec<usize> = (0..4).map(|k| taobao.graph.user_item(k).nnz()).collect();
    assert!(counts[3] < counts[0], "buy not sparser than pv: {counts:?}");
    assert!(counts[3] < counts[1] && counts[3] < counts[2]);

    for d in [&ml, &yelp, &taobao] {
        assert_eq!(d.test[0].negatives.len(), 99, "paper protocol is 99 negatives");
        assert!(d.n_test() > 300, "{}: too few test users", d.name);
    }
}

#[test]
fn short_gnmr_run_on_each_dataset() {
    for data in [
        gnmr::data::presets::tiny_movielens(7),
        gnmr::data::presets::tiny_taobao(7),
    ] {
        let mut model = Gnmr::new(
            &data.graph,
            GnmrConfig { pretrain: false, seed: 5, ..GnmrConfig::default() },
        );
        let report = model.fit(&data.graph, &TrainConfig { epochs: 3, ..TrainConfig::fast_test() });
        assert!(report.final_loss().is_finite(), "{}: loss diverged", data.name);
        let r = evaluate(&model, &data.test, &[10]);
        assert!(r.hr_at(10) > 0.0, "{}: zero HR", data.name);
    }
}

#[test]
fn table_renderer_matches_paper_layout() {
    let mut t = Table::new(&["Model", "ML HR", "ML NDCG", "Yelp HR", "Yelp NDCG", "Taobao HR", "Taobao NDCG"]);
    t.row(&[
        "GNMR".to_string(),
        fmt_metric(0.857),
        fmt_metric(0.575),
        fmt_metric(0.848),
        fmt_metric(0.559),
        fmt_metric(0.424),
        fmt_metric(0.249),
    ]);
    let rendered = t.render();
    assert!(rendered.contains("0.857"));
    assert!(rendered.lines().count() == 3);
}
