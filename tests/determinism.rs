//! The workspace determinism contract: same seed => identical results;
//! different seed => different results.

use gnmr::prelude::*;

fn train_hr(seed: u64) -> f64 {
    let data = gnmr::data::presets::tiny_movielens(3);
    let mut model = Gnmr::new(
        &data.graph,
        GnmrConfig { pretrain: false, seed, ..GnmrConfig::default() },
    );
    model.fit(&data.graph, &TrainConfig { epochs: 6, seed, ..TrainConfig::fast_test() });
    evaluate(&model, &data.test, &[10]).hr_at(10)
}

#[test]
fn gnmr_training_is_reproducible() {
    assert_eq!(train_hr(5), train_hr(5));
}

#[test]
fn different_seeds_differ() {
    // Same data, different init/sampling: metrics should not coincide
    // exactly (they are averages over hundreds of floating point scores).
    let a = train_hr(5);
    let b = train_hr(6);
    assert!(a != b || {
        // In the unlikely case HR ties, the underlying scores must differ.
        let data = gnmr::data::presets::tiny_movielens(3);
        let mk = |seed| {
            let mut m = Gnmr::new(&data.graph, GnmrConfig { pretrain: false, seed, ..GnmrConfig::default() });
            m.fit(&data.graph, &TrainConfig { epochs: 6, seed, ..TrainConfig::fast_test() });
            m.score_pair(0, 0)
        };
        mk(5) != mk(6)
    });
}

#[test]
fn datasets_and_baselines_are_reproducible() {
    let a = gnmr::data::presets::tiny_taobao(9);
    let b = gnmr::data::presets::tiny_taobao(9);
    assert_eq!(a.test, b.test);

    let cfg = BaselineConfig { epochs: 4, ..BaselineConfig::fast_test() };
    let m1 = BiasMf::fit(&a.graph, &cfg);
    let m2 = BiasMf::fit(&b.graph, &cfg);
    assert_eq!(m1.score(3, &[1, 5, 9]), m2.score(3, &[1, 5, 9]));
}
