//! The workspace determinism contract: same seed => identical results;
//! different seed => different results.

use gnmr::prelude::*;

fn train_hr(seed: u64) -> f64 {
    let data = gnmr::data::presets::tiny_movielens(3);
    let mut model = Gnmr::new(
        &data.graph,
        GnmrConfig { pretrain: false, seed, ..GnmrConfig::default() },
    );
    model.fit(&data.graph, &TrainConfig { epochs: 6, seed, ..TrainConfig::fast_test() });
    evaluate(&model, &data.test, &[10]).hr_at(10)
}

#[test]
fn gnmr_training_is_reproducible() {
    assert_eq!(train_hr(5), train_hr(5));
}

#[test]
fn different_seeds_differ() {
    // Same data, different init/sampling: metrics should not coincide
    // exactly (they are averages over hundreds of floating point scores).
    let a = train_hr(5);
    let b = train_hr(6);
    assert!(a != b || {
        // In the unlikely case HR ties, the underlying scores must differ.
        let data = gnmr::data::presets::tiny_movielens(3);
        let mk = |seed| {
            let mut m = Gnmr::new(&data.graph, GnmrConfig { pretrain: false, seed, ..GnmrConfig::default() });
            m.fit(&data.graph, &TrainConfig { epochs: 6, seed, ..TrainConfig::fast_test() });
            m.score_pair(0, 0)
        };
        mk(5) != mk(6)
    });
}

#[test]
fn training_is_thread_count_invariant() {
    // The cross-thread half of the determinism contract: a full
    // training run must produce bitwise-identical parameters and
    // recommendation lists at every thread count, now that the kernels
    // route through cost-model chunk plans and the work-stealing
    // scheduler. `GNMR_THREADS` is read once per process, so the
    // in-process equivalent `par::set_threads` drives the sweep here
    // ({1, 2, 4}, mirroring the satellite CI matrix that re-runs the
    // whole suite under GNMR_THREADS=1 and 4); `set_min_work(Some(1))`
    // pushes even this tiny model's kernels through the parallel
    // paths, which would otherwise stay serial below the work
    // threshold and make the sweep vacuous.
    gnmr::tensor::kernels::set_min_work(Some(1));
    let run = |threads: usize| {
        par::set_threads(Some(threads));
        let data = gnmr::data::presets::tiny_movielens(3);
        let mut model = Gnmr::new(
            &data.graph,
            GnmrConfig { pretrain: false, seed: 11, ..GnmrConfig::default() },
        );
        model.fit(&data.graph, &TrainConfig { epochs: 3, seed: 11, ..TrainConfig::fast_test() });
        let params: Vec<(String, Vec<f32>)> = model
            .params()
            .iter()
            .map(|(name, m)| (name.to_string(), m.data().to_vec()))
            .collect();
        let recs: Vec<Vec<(u32, f32)>> = (0..data.graph.n_users() as u32)
            .map(|u| model.recommend(u, 10, &[]))
            .collect();
        (params, recs)
    };
    let result = std::panic::catch_unwind(|| {
        let (params_1t, recs_1t) = run(1);
        assert!(!params_1t.is_empty() && !recs_1t.is_empty());
        for threads in [2usize, 4] {
            let (params, recs) = run(threads);
            for ((name_a, data_a), (name_b, data_b)) in params_1t.iter().zip(&params) {
                assert_eq!(name_a, name_b);
                assert_eq!(data_a, data_b, "param {name_a} diverged at {threads} threads");
            }
            assert_eq!(recs, recs_1t, "recommendations diverged at {threads} threads");
        }
    });
    gnmr::tensor::kernels::set_min_work(None);
    par::set_threads(None);
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

#[test]
fn packed_matmul_path_preserves_training_bytes() {
    // The panel-packed tiled matmul is the parallel/large-shape route;
    // with the explicit thread override (and `min_work` floored so this
    // tiny model's products clear the dispatch threshold) the whole
    // fit's dense products run through the packed microkernels at 2 and
    // 4 threads, while the 1-thread run takes the plain serial loops.
    // Packing is a layout change, never an order change, so parameters
    // must be bitwise identical whichever path ran. (A concurrent test
    // resetting the globals would only flip code paths, never bytes.)
    gnmr::tensor::kernels::set_min_work(Some(1));
    let run = |threads: usize| -> Vec<(String, Vec<u32>)> {
        par::set_threads(Some(threads));
        let data = gnmr::data::presets::tiny_taobao(4);
        let mut model = Gnmr::new(
            &data.graph,
            GnmrConfig { pretrain: false, seed: 23, ..GnmrConfig::default() },
        );
        model.fit(&data.graph, &TrainConfig { epochs: 2, seed: 23, ..TrainConfig::fast_test() });
        model
            .params()
            .iter()
            .map(|(name, m)| (name.to_string(), m.data().iter().map(|v| v.to_bits()).collect()))
            .collect()
    };
    let result = std::panic::catch_unwind(|| {
        let serial = run(1);
        assert!(!serial.is_empty());
        for threads in [2usize, 4] {
            let packed = run(threads);
            for ((name_a, bits_a), (name_b, bits_b)) in serial.iter().zip(&packed) {
                assert_eq!(name_a, name_b);
                assert_eq!(bits_a, bits_b, "param {name_a}: packed path diverged at {threads} threads");
            }
        }
    });
    gnmr::tensor::kernels::set_min_work(None);
    par::set_threads(None);
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

#[test]
fn resume_equivalence_is_thread_count_invariant() {
    // The crash-safety half of the determinism contract, crossed with
    // the thread sweep: a run checkpointed and killed mid-training,
    // then resumed by a fresh process, must land bitwise on the
    // uninterrupted run — parameters, fused representations, and full
    // recommendation lists — at every thread count. As above,
    // `set_min_work(Some(1))` forces the tiny model through the
    // parallel kernel paths so the sweep is not vacuous.
    gnmr::tensor::kernels::set_min_work(Some(1));
    let total_epochs = 4;
    let run = |threads: usize, kill_after: Option<usize>| {
        par::set_threads(Some(threads));
        let data = gnmr::data::presets::tiny_movielens(3);
        let cfg = GnmrConfig { pretrain: false, seed: 11, ..GnmrConfig::default() };
        let tcfg = |epochs| TrainConfig { epochs, seed: 11, ..TrainConfig::fast_test() };
        let mut model = Gnmr::new(&data.graph, cfg);
        if let Some(kill_after) = kill_after {
            let dir = std::env::temp_dir()
                .join(format!("gnmr_det_resume_{threads}_{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            let path = dir.join("run.ckpt");
            // Phase 1: checkpoint every epoch, "crash" at kill_after.
            let mut ck = Checkpointing::every(&path, 1);
            model.fit_checkpointed(&data.graph, &tcfg(kill_after), &mut ck).expect("phase 1");
            // Phase 2: a fresh model resumes from disk and finishes.
            model = Gnmr::new(&data.graph, cfg);
            let mut ck = Checkpointing::every(&path, 1);
            model.fit_checkpointed(&data.graph, &tcfg(total_epochs), &mut ck).expect("resume");
            let _ = std::fs::remove_dir_all(&dir);
        } else {
            model.fit(&data.graph, &tcfg(total_epochs));
        }
        let params: Vec<(String, Vec<u32>)> = model
            .params()
            .iter()
            .map(|(name, m)| (name.to_string(), m.data().iter().map(|v| v.to_bits()).collect()))
            .collect();
        let (u, v) = model.representations().expect("ready");
        let reprs: Vec<Vec<u32>> = [u, v]
            .iter()
            .map(|m| m.data().iter().map(|v| v.to_bits()).collect())
            .collect();
        let recs: Vec<Vec<(u32, f32)>> = (0..data.graph.n_users() as u32)
            .map(|user| model.recommend(user, 10, &[]))
            .collect();
        (params, reprs, recs)
    };
    let result = std::panic::catch_unwind(|| {
        for threads in [1usize, 2, 4] {
            let straight = run(threads, None);
            let resumed = run(threads, Some(2));
            assert!(!straight.0.is_empty());
            assert_eq!(straight.0, resumed.0, "{threads} threads: params diverged after resume");
            assert_eq!(
                straight.1, resumed.1,
                "{threads} threads: representations diverged after resume"
            );
            assert_eq!(
                straight.2, resumed.2,
                "{threads} threads: recommendations diverged after resume"
            );
        }
    });
    gnmr::tensor::kernels::set_min_work(None);
    par::set_threads(None);
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

#[test]
fn datasets_and_baselines_are_reproducible() {
    let a = gnmr::data::presets::tiny_taobao(9);
    let b = gnmr::data::presets::tiny_taobao(9);
    assert_eq!(a.test, b.test);

    let cfg = BaselineConfig { epochs: 4, ..BaselineConfig::fast_test() };
    let m1 = BiasMf::fit(&a.graph, &cfg);
    let m2 = BiasMf::fit(&b.graph, &cfg);
    assert_eq!(m1.score(3, &[1, 5, 9]), m2.score(3, &[1, 5, 9]));
}

#[test]
fn arena_reuse_is_bitwise_equal_to_fresh_arenas() {
    // The allocation-discipline half of the determinism contract: the
    // gradient-buffer arena recycles storage between steps (and between
    // whole fits — `Gnmr` holds one arena for its lifetime), so a dirty
    // buffer checked out on step N must never leak bytes into step N+1.
    // Run the same multi-epoch training loop twice over the GNMR
    // forward pass: once with a single shared arena (dirty from step 2
    // onward, the steady-state path), once checking every step's
    // buffers out of a brand-new arena (every buffer freshly
    // allocated). Parameters must be bitwise identical.
    use gnmr::autograd::{Adam, Arena, Ctx, Grads};
    use std::sync::Arc;

    let data = gnmr::data::presets::tiny_movielens(13);
    let users: Arc<Vec<u32>> = Arc::new(vec![0, 1, 2, 3, 2, 1]);
    let pos: Arc<Vec<u32>> = Arc::new(vec![5, 9, 2, 7, 1, 4]);
    let neg: Arc<Vec<u32>> = Arc::new(vec![8, 3, 6, 0, 9, 2]);

    let run = |shared_arena: bool| -> Vec<(String, Vec<u32>)> {
        let mut model = Gnmr::new(
            &data.graph,
            GnmrConfig { pretrain: false, seed: 21, ..GnmrConfig::default() },
        );
        let arena = Arena::new();
        let mut grads = Grads::default();
        let mut opt = Adam::new(0.02);
        for _step in 0..6 {
            let fresh = Arena::new();
            let arena = if shared_arena { &arena } else { &fresh };
            let mut ctx = Ctx::new(model.params());
            let (user_orders, item_orders) = model.forward(&mut ctx);
            let user_all = ctx.g.concat_cols(&user_orders);
            let item_all = ctx.g.concat_cols(&item_orders);
            let u = ctx.g.gather_rows(user_all, Arc::clone(&users));
            let p = ctx.g.gather_rows(item_all, Arc::clone(&pos));
            let n = ctx.g.gather_rows(item_all, Arc::clone(&neg));
            let pos_scores = ctx.g.row_dot(u, p);
            let neg_scores = ctx.g.row_dot(u, n);
            let diff = ctx.g.sub(neg_scores, pos_scores);
            let margin = ctx.g.add_scalar(diff, 1.0);
            let hinge = ctx.g.relu(margin);
            let loss = ctx.g.mean(hinge);
            ctx.grads_into(loss, arena, &mut grads);
            drop(ctx);
            opt.step(model.params_mut(), &grads);
            grads.recycle(arena);
        }
        model
            .params()
            .iter()
            .map(|(name, m)| (name.to_string(), m.data().iter().map(|v| v.to_bits()).collect()))
            .collect()
    };

    let shared = run(true);
    let fresh = run(false);
    assert!(!shared.is_empty());
    for ((name_a, bits_a), (name_b, bits_b)) in shared.iter().zip(&fresh) {
        assert_eq!(name_a, name_b);
        assert_eq!(bits_a, bits_b, "param {name_a}: dirty-arena reuse changed training bytes");
    }
}
