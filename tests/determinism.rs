//! The workspace determinism contract: same seed => identical results;
//! different seed => different results.

use gnmr::prelude::*;

fn train_hr(seed: u64) -> f64 {
    let data = gnmr::data::presets::tiny_movielens(3);
    let mut model = Gnmr::new(
        &data.graph,
        GnmrConfig { pretrain: false, seed, ..GnmrConfig::default() },
    );
    model.fit(&data.graph, &TrainConfig { epochs: 6, seed, ..TrainConfig::fast_test() });
    evaluate(&model, &data.test, &[10]).hr_at(10)
}

#[test]
fn gnmr_training_is_reproducible() {
    assert_eq!(train_hr(5), train_hr(5));
}

#[test]
fn different_seeds_differ() {
    // Same data, different init/sampling: metrics should not coincide
    // exactly (they are averages over hundreds of floating point scores).
    let a = train_hr(5);
    let b = train_hr(6);
    assert!(a != b || {
        // In the unlikely case HR ties, the underlying scores must differ.
        let data = gnmr::data::presets::tiny_movielens(3);
        let mk = |seed| {
            let mut m = Gnmr::new(&data.graph, GnmrConfig { pretrain: false, seed, ..GnmrConfig::default() });
            m.fit(&data.graph, &TrainConfig { epochs: 6, seed, ..TrainConfig::fast_test() });
            m.score_pair(0, 0)
        };
        mk(5) != mk(6)
    });
}

#[test]
fn training_is_thread_count_invariant() {
    // The cross-thread half of the determinism contract: a full
    // training run must produce bitwise-identical parameters and
    // recommendation lists at every thread count, now that the kernels
    // route through cost-model chunk plans and the work-stealing
    // scheduler. `GNMR_THREADS` is read once per process, so the
    // in-process equivalent `par::set_threads` drives the sweep here
    // ({1, 2, 4}, mirroring the satellite CI matrix that re-runs the
    // whole suite under GNMR_THREADS=1 and 4); `set_min_work(Some(1))`
    // pushes even this tiny model's kernels through the parallel
    // paths, which would otherwise stay serial below the work
    // threshold and make the sweep vacuous.
    gnmr::tensor::kernels::set_min_work(Some(1));
    let run = |threads: usize| {
        par::set_threads(Some(threads));
        let data = gnmr::data::presets::tiny_movielens(3);
        let mut model = Gnmr::new(
            &data.graph,
            GnmrConfig { pretrain: false, seed: 11, ..GnmrConfig::default() },
        );
        model.fit(&data.graph, &TrainConfig { epochs: 3, seed: 11, ..TrainConfig::fast_test() });
        let params: Vec<(String, Vec<f32>)> = model
            .params()
            .iter()
            .map(|(name, m)| (name.to_string(), m.data().to_vec()))
            .collect();
        let recs: Vec<Vec<(u32, f32)>> = (0..data.graph.n_users() as u32)
            .map(|u| model.recommend(u, 10, &[]))
            .collect();
        (params, recs)
    };
    let result = std::panic::catch_unwind(|| {
        let (params_1t, recs_1t) = run(1);
        assert!(!params_1t.is_empty() && !recs_1t.is_empty());
        for threads in [2usize, 4] {
            let (params, recs) = run(threads);
            for ((name_a, data_a), (name_b, data_b)) in params_1t.iter().zip(&params) {
                assert_eq!(name_a, name_b);
                assert_eq!(data_a, data_b, "param {name_a} diverged at {threads} threads");
            }
            assert_eq!(recs, recs_1t, "recommendations diverged at {threads} threads");
        }
    });
    gnmr::tensor::kernels::set_min_work(None);
    par::set_threads(None);
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

#[test]
fn datasets_and_baselines_are_reproducible() {
    let a = gnmr::data::presets::tiny_taobao(9);
    let b = gnmr::data::presets::tiny_taobao(9);
    assert_eq!(a.test, b.test);

    let cfg = BaselineConfig { epochs: 4, ..BaselineConfig::fast_test() };
    let m1 = BiasMf::fit(&a.graph, &cfg);
    let m2 = BiasMf::fit(&b.graph, &cfg);
    assert_eq!(m1.score(3, &[1, 5, 9]), m2.score(3, &[1, 5, 9]));
}
