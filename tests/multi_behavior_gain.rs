//! The paper's central claim, on the funnel dataset: auxiliary behaviors
//! (page views, favorites, carts) improve purchase recommendation.

use gnmr::prelude::*;

#[test]
fn auxiliary_behaviors_help_on_sparse_targets() {
    let data = gnmr::data::presets::tiny_taobao(3);
    let tcfg = TrainConfig { epochs: 30, ..TrainConfig::fast_test() };

    let mut full = Gnmr::new(
        &data.graph,
        GnmrConfig { pretrain: false, seed: 5, ..GnmrConfig::default() },
    );
    full.fit(&data.graph, &tcfg);
    let full_hr = evaluate_parallel(&full, &data.test, &[10], 2).hr_at(10);

    let only = data.target_only();
    let mut target_only = Gnmr::new(
        &only.graph,
        GnmrConfig { pretrain: false, seed: 5, ..GnmrConfig::default() },
    );
    target_only.fit(&only.graph, &tcfg);
    let only_hr = evaluate_parallel(&target_only, &data.test, &[10], 2).hr_at(10);

    assert!(
        full_hr >= only_hr,
        "multi-behavior GNMR ({full_hr:.3}) lost to target-only ({only_hr:.3})"
    );
    // And both must be meaningfully better than chance (50 negatives =>
    // random HR@10 ~ 0.20).
    assert!(full_hr > 0.25, "full model too weak: {full_hr:.3}");
}

#[test]
fn behavior_subsets_change_the_model() {
    let data = gnmr::data::presets::tiny_taobao(3);
    let without_pv = data.with_behaviors(&["fav", "cart", "buy"]);
    assert_eq!(without_pv.graph.n_behaviors(), 3);
    assert_eq!(without_pv.graph.target_name(), "buy");
    assert!(without_pv.graph.total_interactions() < data.graph.total_interactions());
    // Evaluation set is unchanged by subsetting.
    assert_eq!(without_pv.test, data.test);
}
